package service

import (
	"bytes"
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/snapshot"
	"github.com/muerp/quantumnet/internal/wal"
)

// This file is the daemon's durability layer (DESIGN.md §7): every admission
// decision, release and expiry is appended to a write-ahead log BEFORE the
// caller sees the response, a background snapshotter periodically folds the
// log into an atomic state dump, and recovery (Server boot with the same
// data directory, or the offline cmd/qrecover tool) rebuilds the exact
// pre-crash state — ledger budgets, closure epoch, session table and
// expiry-heap order — from the latest snapshot plus the WAL suffix.
//
// Determinism is what makes replay exact rather than approximate:
//
//   - A successful solve only ever Reserves its committed channels, in
//     tree order (core.BuildGreedyTree's commit discipline), so an admit
//     record replays by reserving the recorded channels in order —
//     reproducing the free budgets AND the closure log byte for byte.
//   - A rolled-back attempt (infeasible or cancelled mid-solve) leaves the
//     budgets untouched but may bump the closure generation; an epoch
//     record carries the post-rollback generation and replays via
//     Ledger.SyncEpoch.
//   - Releases remove sessions from the expiry heap eagerly
//     (heap.Remove), so heap membership always equals the session table
//     and replaying the same push/remove sequence rebuilds the identical
//     heap slice.
//
// WAL order equals mutation order because records are enqueued while the
// server mutex is held — the same lock that serializes every ledger
// mutation — and group commit preserves enqueue order.

// ErrDurability reports a write-ahead-log append failure. The in-memory
// decision already happened; the server marks itself unhealthy (healthz
// 503) because it can no longer promise recovery.
var ErrDurability = errors.New("service: durability failure")

// WAL record type tags.
const (
	recAdmit   = "admit"
	recRelease = "release"
	recEpoch   = "epoch"
)

// walRecord is the envelope of one WAL entry; T selects which body is set.
type walRecord struct {
	T       string         `json:"t"`
	Admit   *admitRecord   `json:"admit,omitempty"`
	Release *releaseRecord `json:"release,omitempty"`
	Epoch   *epochRecord   `json:"epoch,omitempty"`
}

// admitRecord persists one accepted session: its public info, the routed
// tree whose channels replay reserves in order, and the ID-counter value
// after the admit so recovery continues the ID sequence without reuse.
// Cross-region sessions (Shards non-empty) replay by reserving Load — this
// shard's slice of the tree's per-switch demand — instead of the tree; the
// tree itself is recorded only on the session's home shard (Secondary
// false) for inspection and cross-shard verification.
type admitRecord struct {
	Info      SessionInfo         `json:"info"`
	Tree      quantum.Tree        `json:"tree"`
	NextID    uint64              `json:"next_id"`
	Load      []quantum.LoadEntry `json:"load,omitempty"`
	Shards    []int               `json:"shards,omitempty"`
	Secondary bool                `json:"secondary,omitempty"`
}

// releaseRecord persists one capacity refund (TTL expiry or DELETE).
// Tenant mirrors the session's tenant so per-tenant accounting can be
// rebuilt from the log alone; the default tenant's empty string is omitted,
// keeping default-tenant frames byte-identical to the pre-tenant schema.
type releaseRecord struct {
	ID     string    `json:"id"`
	Tenant string    `json:"tenant,omitempty"`
	Reason string    `json:"reason"` // "expired" | "deleted"
	At     time.Time `json:"at"`
}

// epochRecord persists the closure-generation bump left behind by a
// rolled-back routing attempt (no budget change to replay, only the epoch).
type epochRecord struct {
	Gen uint64 `json:"gen"`
}

// SessionState is one live session as persisted in a snapshot. Load, Shards
// and Secondary mirror the session's cross-region fields (admitRecord).
type SessionState struct {
	Info      SessionInfo         `json:"info"`
	Tree      quantum.Tree        `json:"tree"`
	Load      []quantum.LoadEntry `json:"load,omitempty"`
	Shards    []int               `json:"shards,omitempty"`
	Secondary bool                `json:"secondary,omitempty"`
}

// State is the serializable image of the daemon's admission state: the
// ledger (budgets + closure epoch), every live session, and the ID counter.
// Sessions are stored in expiry-heap slice order — a valid binary heap
// restores verbatim, which is what keeps recovered heaps byte-identical to
// the pre-crash ones.
type State struct {
	NextID   uint64              `json:"next_id"`
	Ledger   quantum.LedgerState `json:"ledger"`
	Sessions []SessionState      `json:"sessions"`
}

// durability is the Server's durability runtime; nil when Config.DataDir is
// unset. recs, snapSeq and snapMeta are guarded by the server mutex.
type durability struct {
	dir      string
	snaps    string // snapshot directory: snap/ or snap/s<ii>/ for a shard
	log      *wal.Log
	every    uint64
	interval time.Duration
	keep     int

	recs     [][]byte // records staged by the current locked section
	snapSeq  uint64   // WAL seq covered by the newest snapshot
	snapMeta snapshot.Meta

	snapC    chan struct{}
	failed   atomic.Bool
	failure  atomic.Value // error string of the first WAL failure
	snapErrs atomic.Int64

	recovery RecoveryMetrics
}

// appendRecordLocked stages one WAL record for the current locked section.
// Callers hold s.mu; the staged batch is enqueued by enqueueRecordsLocked
// before the section unlocks, so WAL order is mutation order.
func (s *Server) appendRecordLocked(rec walRecord) {
	if s.dur == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		// Records are plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("service: marshal WAL record: %v", err))
	}
	s.dur.recs = append(s.dur.recs, b)
}

// enqueueRecordsLocked hands the staged records to the WAL's group-commit
// goroutine and returns the durability ticket (nil when there is nothing to
// wait for). Still under s.mu, it also arms the count-based snapshot
// trigger.
func (s *Server) enqueueRecordsLocked() *wal.Ticket {
	if s.dur == nil || len(s.dur.recs) == 0 {
		return nil
	}
	t := s.dur.log.Enqueue(s.dur.recs...)
	s.dur.recs = s.dur.recs[:0]
	if s.dur.log.Seq()-s.dur.snapSeq >= s.dur.every {
		select {
		case s.dur.snapC <- struct{}{}:
		default:
		}
	}
	return t
}

// waitDurable blocks until the ticket's records are fsynced. On failure the
// server flips unhealthy: the decisions already applied in memory can no
// longer be promised across a crash.
func (s *Server) waitDurable(t *wal.Ticket) error {
	if t == nil {
		return nil
	}
	err := t.Wait()
	if err != nil {
		s.noteDurabilityFailure(err)
	}
	return err
}

func (s *Server) noteDurabilityFailure(err error) {
	if s.dur != nil && s.dur.failed.CompareAndSwap(false, true) {
		s.dur.failure.Store(err.Error())
	}
}

// stateLocked captures the Server's durable state. Callers hold s.mu.
func (s *Server) stateLocked() State {
	st := State{
		NextID:   s.nextID.Load(),
		Ledger:   s.led.ExportState(),
		Sessions: make([]SessionState, len(s.expiry)),
	}
	for i, sess := range s.expiry {
		st.Sessions[i] = SessionState{
			Info: sess.info, Tree: sess.tree,
			Load: sess.load, Shards: sess.shards, Secondary: sess.secondary,
		}
	}
	return st
}

// StateDump returns the server's current durable state — the same document
// a snapshot would persist. Tests and tools compare recovered servers
// against live ones by comparing marshaled dumps (JSON serialization
// normalizes time.Time monotonic readings away).
func (s *Server) StateDump() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateLocked()
}

// snapshotLoop is the background snapshotter: it folds the WAL into a fresh
// snapshot every SnapshotEvery records (snapC) or SnapshotInterval, then
// compacts the log and prunes old snapshots.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.dur.snapC:
		case <-s.clock.After(s.dur.interval):
		}
		s.snapshotNow()
	}
}

// snapshotNow takes one snapshot if any records landed since the last one.
// Snapshot failures are counted, not fatal: the WAL still holds everything.
func (s *Server) snapshotNow() {
	s.mu.Lock()
	seq := s.dur.log.Seq() // mutate+enqueue share s.mu, so state == fold(records[:seq])
	// Skip only when a snapshot file actually covers seq: after a WAL-only
	// recovery snapSeq equals the replay end with no snapshot on disk, and
	// writing one here is what lets the WAL finally be compacted.
	if seq == s.dur.snapSeq && s.dur.snapMeta.Path != "" {
		s.mu.Unlock()
		return
	}
	st := s.stateLocked()
	warm := s.acceptSetsLocked()
	s.mu.Unlock()

	meta, err := snapshot.Save(s.dur.snaps, seq, s.clock.Now(), st)
	if err != nil {
		s.dur.snapErrs.Add(1)
		return
	}
	// Persist the solve cache's accept-tier user sets beside the snapshot so
	// a restart can re-prime the cache (solvecache.go). Advisory: a write
	// failure costs warm hits, never correctness.
	if warm != nil {
		if err := s.saveWarmSets(warm); err != nil {
			s.dur.snapErrs.Add(1)
		}
	}
	s.mu.Lock()
	s.dur.snapSeq = seq
	s.dur.snapMeta = meta
	s.mu.Unlock()
	if _, err := s.dur.log.Compact(seq); err != nil && !errors.Is(err, wal.ErrClosed) {
		s.dur.snapErrs.Add(1)
	}
	if err := snapshot.Prune(s.dur.snaps, s.dur.keep); err != nil {
		s.dur.snapErrs.Add(1)
	}
}

// Data-directory layout: wal/ (segments; a sharded server interleaves one
// WAL stream per shard in the same directory), snap/ (snapshots; shard i
// snapshots under snap/s<ii>/), topology.json + params.json (pinned
// environment) and partition.json (pinned region partition, sharded only).
func walDir(dataDir string) string  { return filepath.Join(dataDir, "wal") }
func snapDir(dataDir string) string { return filepath.Join(dataDir, "snap") }

// shardSnapDir returns shard i's snapshot directory inside a data dir.
func shardSnapDir(dataDir string, shard int) string {
	return filepath.Join(dataDir, "snap", fmt.Sprintf("s%02d", shard))
}

// TopologyPath returns the pinned-topology file inside a data directory.
func TopologyPath(dataDir string) string { return filepath.Join(dataDir, "topology.json") }

// ParamsPath returns the pinned-parameters file inside a data directory.
func ParamsPath(dataDir string) string { return filepath.Join(dataDir, "params.json") }

// QoSPath returns the pinned QoS tenant config inside a data directory.
// Like the topology, the tenant policy is pinned on first durable boot and
// verified on later ones: silently changing weights or quotas under a
// recovering WAL would make per-tenant accounting unexplainable. Operators
// change policy by removing qos.json together with the config change.
func QoSPath(dataDir string) string { return filepath.Join(dataDir, "qos.json") }

// warmCachePath returns the persisted solve-cache warm-set file; it lives
// beside the snapshots because it is advisory state derived from them.
func warmCachePath(snaps string) string { return filepath.Join(snaps, "cachewarm.json") }

// warmSets is the on-disk form of the solve cache's accept-tier user sets,
// most-recently-used first.
type warmSets struct {
	Sets [][]graph.NodeID `json:"sets"`
}

// pinEnvironment stores the topology and physical parameters in the data
// directory on first use, and on later boots verifies the configured ones
// match: a WAL replays channel reservations by node ID, so recovering onto
// a different graph would corrupt state silently.
func pinEnvironment(dataDir string, g *graph.Graph, p quantum.Params) error {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}
	want, err := json.Marshal(g)
	if err != nil {
		return err
	}
	if err := pinFile(TopologyPath(dataDir), want, "topology"); err != nil {
		return err
	}
	wantP, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return pinFile(ParamsPath(dataDir), wantP, "params")
}

func pinFile(path string, want []byte, what string) error {
	have, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, want, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	if err != nil {
		return err
	}
	if !bytes.Equal(normalizeJSON(have), normalizeJSON(want)) {
		return fmt.Errorf("service: configured %s differs from the one pinned in %s; recovery onto a different %s would corrupt state", what, path, what)
	}
	return nil
}

// normalizeJSON compacts a JSON document so pinned files compare by content
// rather than formatting.
func normalizeJSON(b []byte) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		return b
	}
	return buf.Bytes()
}

// replayState is the durable-state machine shared by Server recovery and
// cmd/qrecover: a ledger, session table and expiry heap that snapshot
// restore and WAL replay drive exactly like live admission does.
type replayState struct {
	led      *quantum.Ledger
	sessions map[string]*session
	expiry   expiryHeap
	nextID   uint64
}

func newReplayState(g *graph.Graph) *replayState {
	return &replayState{led: quantum.NewLedger(g), sessions: make(map[string]*session)}
}

// restore installs a snapshot's state. The stored session order is the heap
// slice; restoring it verbatim (with heapIdx = position) reproduces the
// exact heap without re-heapifying.
func (rs *replayState) restore(st State) error {
	if err := rs.led.ImportState(st.Ledger); err != nil {
		return err
	}
	rs.nextID = st.NextID
	rs.expiry = make(expiryHeap, 0, len(st.Sessions))
	for i, ss := range st.Sessions {
		if _, dup := rs.sessions[ss.Info.ID]; dup {
			return fmt.Errorf("service: snapshot lists session %q twice", ss.Info.ID)
		}
		sess := &session{
			info: ss.Info, tree: ss.Tree, expiresAt: ss.Info.ExpiresAt, heapIdx: i,
			load: ss.Load, shards: ss.Shards, secondary: ss.Secondary,
		}
		rs.sessions[ss.Info.ID] = sess
		rs.expiry = append(rs.expiry, sess)
	}
	return nil
}

// apply replays one WAL record.
func (rs *replayState) apply(seq uint64, payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("service: WAL record %d: %w", seq, err)
	}
	switch rec.T {
	case recAdmit:
		if rec.Admit == nil {
			return fmt.Errorf("service: WAL record %d: admit without body", seq)
		}
		a := rec.Admit
		if _, dup := rs.sessions[a.Info.ID]; dup {
			return fmt.Errorf("service: WAL record %d admits duplicate session %q", seq, a.Info.ID)
		}
		if len(a.Shards) > 0 {
			// Cross-region: this shard holds a load slice, not the tree.
			if err := rs.led.ReserveLoad(a.Load); err != nil {
				return fmt.Errorf("service: WAL record %d (admit %s): %w", seq, a.Info.ID, err)
			}
		} else {
			for _, c := range a.Tree.Channels {
				if err := rs.led.Reserve(c.Nodes); err != nil {
					return fmt.Errorf("service: WAL record %d (admit %s): %w", seq, a.Info.ID, err)
				}
			}
		}
		sess := &session{
			info: a.Info, tree: a.Tree, expiresAt: a.Info.ExpiresAt,
			load: a.Load, shards: a.Shards, secondary: a.Secondary,
		}
		rs.sessions[a.Info.ID] = sess
		heap.Push(&rs.expiry, sess)
		if a.NextID > rs.nextID {
			rs.nextID = a.NextID
		}
	case recRelease:
		if rec.Release == nil {
			return fmt.Errorf("service: WAL record %d: release without body", seq)
		}
		sess, ok := rs.sessions[rec.Release.ID]
		if !ok {
			return fmt.Errorf("service: WAL record %d releases unknown session %q", seq, rec.Release.ID)
		}
		heap.Remove(&rs.expiry, sess.heapIdx)
		if sess.shards != nil {
			rs.led.ReleaseLoad(sess.load)
		} else {
			core.ReleaseTree(rs.led, sess.tree)
		}
		delete(rs.sessions, sess.info.ID)
	case recEpoch:
		if rec.Epoch == nil {
			return fmt.Errorf("service: WAL record %d: epoch without body", seq)
		}
		if err := rs.led.SyncEpoch(rec.Epoch.Gen); err != nil {
			return fmt.Errorf("service: WAL record %d: %w", seq, err)
		}
	default:
		return fmt.Errorf("service: WAL record %d has unknown type %q", seq, rec.T)
	}
	return nil
}

func (rs *replayState) dump() State {
	st := State{
		NextID:   rs.nextID,
		Ledger:   rs.led.ExportState(),
		Sessions: make([]SessionState, len(rs.expiry)),
	}
	for i, sess := range rs.expiry {
		st.Sessions[i] = SessionState{
			Info: sess.info, Tree: sess.tree,
			Load: sess.load, Shards: sess.shards, Secondary: sess.secondary,
		}
	}
	return st
}

// Recovered is the result of rebuilding state from a data directory.
type Recovered struct {
	// State is the rebuilt durable state.
	State State
	// SnapshotSeq and SnapshotPath identify the snapshot recovery started
	// from; SnapshotSeq 0 with an empty path means a full-WAL replay.
	SnapshotSeq  uint64
	SnapshotPath string
	// WALRecords is the number of WAL records replayed on top.
	WALRecords uint64
	// NextSeq is the sequence number the next WAL record will take.
	NextSeq uint64

	rs *replayState
}

// Recover rebuilds the admission state recorded in dataDir against g: it
// loads the newest valid snapshot (if any) and replays the WAL suffix on
// top. It never mutates the directory, so it is safe to run offline
// (cmd/qrecover) or repeatedly.
func Recover(dataDir string, g *graph.Graph) (*Recovered, error) {
	return recoverDirs(walDir(dataDir), snapDir(dataDir), 0, false, g)
}

// RecoverShard rebuilds one shard's admission state from its WAL stream and
// snapshot directory inside a shared data dir. g must be the shard's region
// graph (RegionGraph), not the full topology: the shard's ledger budgets are
// defined over it. Shards recover independently — no cross-stream order.
func RecoverShard(dataDir string, shard int, g *graph.Graph) (*Recovered, error) {
	return recoverDirs(walDir(dataDir), shardSnapDir(dataDir, shard), wal.StreamID(shard), true, g)
}

// recoverDirs is the shared snapshot-restore + WAL-replay engine behind
// Recover (v1 log) and RecoverShard (one v2 stream).
func recoverDirs(wdir, sdir string, stream wal.StreamID, streamed bool, g *graph.Graph) (*Recovered, error) {
	rs := newReplayState(g)
	rec := &Recovered{rs: rs}

	var st State
	meta, ok, err := snapshot.Latest(sdir, &st)
	if err != nil {
		return nil, fmt.Errorf("service: load snapshot: %w", err)
	}
	from := uint64(0)
	if ok {
		if err := rs.restore(st); err != nil {
			return nil, fmt.Errorf("service: restore snapshot %s: %w", meta.Path, err)
		}
		from = meta.Seq
		rec.SnapshotSeq = meta.Seq
		rec.SnapshotPath = meta.Path
	}

	apply := func(seq uint64, payload []byte) error {
		rec.WALRecords++
		return rs.apply(seq, payload)
	}
	var end uint64
	if streamed {
		end, err = wal.ReplayStream(wdir, stream, from, apply)
	} else {
		end, err = wal.Replay(wdir, from, apply)
	}
	if err != nil {
		return nil, fmt.Errorf("service: replay WAL: %w", err)
	}
	// A crash can persist a snapshot whose covered WAL tail never became
	// durable; the snapshot already folds those records in, so the next
	// sequence number continues from whichever is further along.
	rec.NextSeq = end
	if from > rec.NextSeq {
		rec.NextSeq = from
	}
	rec.State = rs.dump()
	return rec, nil
}

// openDurability recovers dataDir's state, installs it into the server and
// opens the WAL for appending. Called from New before the goroutines start.
func (s *Server) openDurability(cfg Config) error {
	t0 := time.Now()
	var rec *Recovered
	var err error
	sdir := snapDir(cfg.DataDir)
	if sh := cfg.shard; sh != nil {
		// Shard of a ShardedServer: the sharded layer pinned the environment;
		// recover this shard's stream + snapshot dir against the region graph.
		sdir = shardSnapDir(cfg.DataDir, sh.index)
		rec, err = RecoverShard(cfg.DataDir, sh.index, cfg.Graph)
	} else {
		if err := pinEnvironment(cfg.DataDir, cfg.Graph, cfg.Params); err != nil {
			return err
		}
		if s.qcfg != nil {
			b, merr := json.Marshal(s.qcfg)
			if merr != nil {
				return merr
			}
			if err := pinFile(QoSPath(cfg.DataDir), b, "qos config"); err != nil {
				return err
			}
		}
		rec, err = Recover(cfg.DataDir, cfg.Graph)
	}
	if err != nil {
		return err
	}
	s.led = rec.rs.led
	s.sessions = rec.rs.sessions
	s.expiry = rec.rs.expiry
	s.nextID.Store(rec.rs.nextID)

	var log *wal.Log
	if sh := cfg.shard; sh != nil {
		log, err = wal.CreateStream(walDir(cfg.DataDir), wal.StreamID(sh.index), rec.NextSeq, wal.Options{NoSync: cfg.NoSync})
	} else {
		log, err = wal.Create(walDir(cfg.DataDir), rec.NextSeq, wal.Options{NoSync: cfg.NoSync})
	}
	if err != nil {
		return fmt.Errorf("service: open WAL: %w", err)
	}
	s.dur = &durability{
		dir:      cfg.DataDir,
		snaps:    sdir,
		log:      log,
		every:    uint64(cfg.SnapshotEvery),
		interval: cfg.SnapshotInterval,
		keep:     cfg.SnapshotKeep,
		snapSeq:  rec.NextSeq, // nothing to snapshot until new records land
		snapC:    make(chan struct{}, 1),
		recovery: RecoveryMetrics{
			DurationMs:  float64(time.Since(t0)) / 1e6,
			WALRecords:  int64(rec.WALRecords),
			Sessions:    len(rec.State.Sessions),
			SnapshotSeq: rec.SnapshotSeq,
		},
	}
	if rec.SnapshotPath != "" {
		if meta, err := snapshot.Load(rec.SnapshotPath, nil); err == nil {
			s.dur.snapMeta = meta
		}
	}
	// Warm-start the solve cache from the previous run's accept-tier sets.
	// Best-effort: a missing or stale file just means a cold cache.
	if s.cache != nil {
		if sets, err := loadWarmSets(warmCachePath(sdir)); err == nil {
			s.warmSolveCache(sets)
		}
	}
	return nil
}

// saveWarmSets writes the warm-set file atomically (tmp + rename).
func (s *Server) saveWarmSets(sets [][]graph.NodeID) error {
	b, err := json.Marshal(warmSets{Sets: sets})
	if err != nil {
		return err
	}
	path := warmCachePath(s.dur.snaps)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func loadWarmSets(path string) ([][]graph.NodeID, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ws warmSets
	if err := json.Unmarshal(b, &ws); err != nil {
		return nil, err
	}
	return ws.Sets, nil
}

// closeDurability takes a final snapshot (so a clean restart replays
// nothing) and closes the WAL. Called from Close after the loops stopped.
func (s *Server) closeDurability() error {
	if s.dur == nil {
		return nil
	}
	s.snapshotNow()
	if err := s.dur.log.Close(); err != nil {
		s.noteDurabilityFailure(err)
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// RecoveryMetrics describes the boot-time recovery in /metrics.
type RecoveryMetrics struct {
	DurationMs  float64 `json:"duration_ms"`
	WALRecords  int64   `json:"wal_records"`
	Sessions    int     `json:"sessions"`
	SnapshotSeq uint64  `json:"snapshot_seq"`
}

// SnapshotMetrics describes the newest snapshot in /metrics.
type SnapshotMetrics struct {
	Seq      uint64  `json:"seq"`
	AgeMs    float64 `json:"age_ms"`
	Bytes    int64   `json:"bytes"`
	Failures int64   `json:"failures"`
}

// DurabilityMetrics is the /metrics durability section, present only when
// the server runs with a data directory.
type DurabilityMetrics struct {
	// Failed is true once any WAL append failed; healthz reports 503.
	Failed  bool   `json:"failed"`
	Failure string `json:"failure,omitempty"`
	// WALSeq is the next WAL sequence number (records ever logged).
	WALSeq   uint64          `json:"wal_seq"`
	WAL      wal.Metrics     `json:"wal"`
	Snapshot SnapshotMetrics `json:"snapshot"`
	Recovery RecoveryMetrics `json:"recovery"`
}

// durabilityMetrics snapshots the durability section; nil when disabled.
func (s *Server) durabilityMetrics() *DurabilityMetrics {
	if s.dur == nil {
		return nil
	}
	s.mu.Lock()
	meta := s.dur.snapMeta
	seq := s.dur.log.Seq()
	s.mu.Unlock()
	dm := &DurabilityMetrics{
		Failed:   s.dur.failed.Load(),
		WALSeq:   seq,
		WAL:      s.dur.log.Metrics(),
		Recovery: s.dur.recovery,
		Snapshot: SnapshotMetrics{
			Seq:      meta.Seq,
			Bytes:    meta.Size,
			Failures: s.dur.snapErrs.Load(),
		},
	}
	if msg, ok := s.dur.failure.Load().(string); ok {
		dm.Failure = msg
	}
	if !meta.TakenAt.IsZero() {
		dm.Snapshot.AgeMs = float64(s.clock.Now().Sub(meta.TakenAt)) / 1e6
	}
	return dm
}
