package service

import (
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// VerifyState cross-checks an admission state document against the topology
// it claims to describe:
//
//   - every session's tree revalidates (quantum.ValidateTree: spanning,
//     capacity, Eq. 1 rates),
//   - re-reserving every session's channels on a fresh ledger reproduces the
//     state's per-switch occupancy exactly (so no qubit is double-booked and
//     none has leaked),
//   - session IDs are below the state's ID counter.
//
// It is the one consistency oracle shared by cmd/qrecover (auditing a data
// directory before a restart) and the speculative scheduler's concurrency
// tests (auditing a live server's StateDump after parallel admissions).
func VerifyState(g *graph.Graph, params quantum.Params, st State) error {
	check := quantum.NewLedger(g)
	for _, ss := range st.Sessions {
		if err := quantum.ValidateTree(g, ss.Info.Users, ss.Tree, params); err != nil {
			return fmt.Errorf("session %s: %w", ss.Info.ID, err)
		}
		for _, c := range ss.Tree.Channels {
			if err := check.Reserve(c.Nodes); err != nil {
				return fmt.Errorf("session %s: re-reserve: %w", ss.Info.ID, err)
			}
		}
		var n uint64
		if _, err := fmt.Sscanf(ss.Info.ID, "s-%d", &n); err != nil || n > st.NextID {
			return fmt.Errorf("session %s: ID outside recovered counter %d", ss.Info.ID, st.NextID)
		}
	}
	for _, id := range g.Switches() {
		if got, want := st.Ledger.Free[id], check.Free(id); got != want {
			return fmt.Errorf("switch %d: recovered %d free qubits, re-reserving every session leaves %d", id, got, want)
		}
	}
	return nil
}
