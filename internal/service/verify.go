package service

import (
	"fmt"
	"sort"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/topology"
)

// parseSessionSeq extracts the per-counter sequence number from a session
// ID: "s-<n>" (standalone server) or "s<shard>-<n>" (sharded server).
func parseSessionSeq(id string) (uint64, error) {
	var n uint64
	if _, err := fmt.Sscanf(id, "s-%d", &n); err == nil {
		return n, nil
	}
	var shard int
	if _, err := fmt.Sscanf(id, "s%d-%d", &shard, &n); err == nil && shard >= 0 {
		return n, nil
	}
	return 0, fmt.Errorf("service: malformed session ID %q", id)
}

// VerifyState cross-checks an admission state document against the topology
// it claims to describe:
//
//   - every session's tree revalidates (quantum.ValidateTree: spanning,
//     capacity, Eq. 1 rates),
//   - re-reserving every session's channels on a fresh ledger reproduces the
//     state's per-switch occupancy exactly (so no qubit is double-booked and
//     none has leaked),
//   - session IDs are below the state's ID counter.
//
// It is the one consistency oracle shared by cmd/qrecover (auditing a data
// directory before a restart) and the speculative scheduler's concurrency
// tests (auditing a live server's StateDump after parallel admissions). For
// a sharded server's composed state (ComposeShardStates) the counter check
// runs against the maximum per-shard counter.
func VerifyState(g *graph.Graph, params quantum.Params, st State) error {
	check := quantum.NewLedger(g)
	for _, ss := range st.Sessions {
		if err := quantum.ValidateTree(g, ss.Info.Users, ss.Tree, params); err != nil {
			return fmt.Errorf("session %s: %w", ss.Info.ID, err)
		}
		for _, c := range ss.Tree.Channels {
			if err := check.Reserve(c.Nodes); err != nil {
				return fmt.Errorf("session %s: re-reserve: %w", ss.Info.ID, err)
			}
		}
		n, err := parseSessionSeq(ss.Info.ID)
		if err != nil || n > st.NextID {
			return fmt.Errorf("session %s: ID outside recovered counter %d", ss.Info.ID, st.NextID)
		}
	}
	for _, id := range g.Switches() {
		if got, want := st.Ledger.Free[id], check.Free(id); got != want {
			return fmt.Errorf("switch %d: recovered %d free qubits, re-reserving every session leaves %d", id, got, want)
		}
	}
	return nil
}

// VerifyShardState is VerifyState for one shard of a sharded server, checked
// against the shard's region graph (RegionGraph). Single-region sessions
// carry whole trees and verify exactly as in VerifyState; cross-region
// sessions carry only this shard's load slice, which re-reserves via
// ReserveLoad. The ID-counter check applies to sessions homed on this shard
// (secondaries draw their IDs from another shard's counter).
func VerifyShardState(rg *graph.Graph, params quantum.Params, st State) error {
	check := quantum.NewLedger(rg)
	for _, ss := range st.Sessions {
		if len(ss.Shards) > 0 {
			if err := check.ReserveLoad(ss.Load); err != nil {
				return fmt.Errorf("session %s: re-reserve load: %w", ss.Info.ID, err)
			}
		} else {
			if err := quantum.ValidateTree(rg, ss.Info.Users, ss.Tree, params); err != nil {
				return fmt.Errorf("session %s: %w", ss.Info.ID, err)
			}
			for _, c := range ss.Tree.Channels {
				if err := check.Reserve(c.Nodes); err != nil {
					return fmt.Errorf("session %s: re-reserve: %w", ss.Info.ID, err)
				}
			}
		}
		if ss.Secondary {
			continue
		}
		n, err := parseSessionSeq(ss.Info.ID)
		if err != nil || n > st.NextID {
			return fmt.Errorf("session %s: ID outside recovered counter %d", ss.Info.ID, st.NextID)
		}
	}
	for _, id := range rg.Switches() {
		if got, want := st.Ledger.Free[id], check.Free(id); got != want {
			return fmt.Errorf("switch %d: recovered %d free qubits, re-reserving every session leaves %d", id, got, want)
		}
	}
	return nil
}

// ComposeShardStates merges per-shard state dumps into one full-topology
// State suitable for VerifyState: each switch's free budget comes from its
// owning shard, every session appears once (its home copy, tree attached),
// and NextID is the maximum per-shard counter.
//
// Shards release a cross-region session independently (each expiry wheel
// refunds its own slice), so a set of dumps taken mid-release can hold the
// session on some involved shards but not others. Such torn sessions cannot
// be verified as trees; ComposeShardStates completes their release
// virtually — refunding the slices still held into the composed budgets and
// dropping the session — and reports their IDs so callers can decide whether
// tearing is acceptable (it never is for a quiesced server).
func ComposeShardStates(g *graph.Graph, part *topology.Partition, states []State) (State, []string, error) {
	if part.K != len(states) {
		return State{}, nil, fmt.Errorf("service: %d shard states for a %d-region partition", len(states), part.K)
	}
	free := make([]int, g.NumNodes())
	for _, sw := range g.Switches() {
		r := part.RegionOf(sw)
		if len(states[r].Ledger.Free) != g.NumNodes() {
			return State{}, nil, fmt.Errorf("service: shard %d ledger covers %d nodes, graph has %d",
				r, len(states[r].Ledger.Free), g.NumNodes())
		}
		free[sw] = states[r].Ledger.Free[sw]
	}

	var out State
	for _, st := range states {
		if st.NextID > out.NextID {
			out.NextID = st.NextID
		}
	}

	// Group every dump's copy of each session; cross-region sessions appear
	// once per involved shard.
	copies := make(map[string][]SessionState)
	var order []string
	for _, st := range states {
		for _, ss := range st.Sessions {
			if _, seen := copies[ss.Info.ID]; !seen {
				order = append(order, ss.Info.ID)
			}
			copies[ss.Info.ID] = append(copies[ss.Info.ID], ss)
		}
	}
	sort.Strings(order)

	var torn []string
	for _, id := range order {
		cs := copies[id]
		if cs[0].Shards == nil {
			if len(cs) != 1 {
				return State{}, nil, fmt.Errorf("service: session %s appears on %d shards without a shard list", id, len(cs))
			}
			out.Sessions = append(out.Sessions, SessionState{Info: cs[0].Info, Tree: cs[0].Tree})
			continue
		}
		var home *SessionState
		for i := range cs {
			if !cs[i].Secondary {
				home = &cs[i]
			}
		}
		if home == nil || len(cs) != len(home.Shards) {
			// Torn mid-release: finish the release virtually.
			torn = append(torn, id)
			for _, ss := range cs {
				for _, e := range ss.Load {
					free[e.ID] += e.Qubits
				}
			}
			continue
		}
		out.Sessions = append(out.Sessions, SessionState{Info: home.Info, Tree: home.Tree})
	}
	out.Ledger = quantum.LedgerState{Free: free}
	return out, torn, nil
}
