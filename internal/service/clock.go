package service

import "time"

// Clock abstracts wall time so tests can drive admission and expiry
// deterministically (the differential test replays a sched.Workload on a
// fake clock). SystemClock is the production implementation.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After behaves like time.After: it returns a channel that delivers one
	// value once d has elapsed. The daemon uses it for the batch-fill wait
	// and the expiry wheel's next-wakeup timer.
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock returns the real-time clock.
func SystemClock() Clock { return systemClock{} }
