package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/topology"
)

// specGraph builds a mid-size random network with enough capacity that a
// concurrent burst mixes accepts and rejects.
func specGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	cfg := topology.Default()
	cfg.Users = 10
	cfg.Switches = 24
	cfg.SwitchQubits = 4
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	return g
}

// specBurst fires submitters goroutines of perG requests each at the server
// (random 2-3 user sets, hour-long TTLs so nothing expires mid-test) and
// returns the accept/reject counts.
func specBurst(t *testing.T, s *Server, g *graph.Graph, submitters, perG int) (accepted, rejected int64) {
	t.Helper()
	users := g.Users()
	var acc, rej atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				size := 2 + rng.Intn(2)
				perm := rng.Perm(len(users))
				set := make([]graph.NodeID, size)
				for j := range set {
					set[j] = users[perm[j]]
				}
				for {
					_, err := s.Submit(context.Background(), set, time.Hour)
					switch {
					case err == nil:
						acc.Add(1)
					case errors.Is(err, core.ErrInfeasible):
						rej.Add(1)
					case errors.Is(err, ErrQueueFull):
						time.Sleep(100 * time.Microsecond)
						continue
					default:
						t.Errorf("Submit: %v", err)
					}
					break
				}
			}
		}(int64(1000 + w))
	}
	wg.Wait()
	return acc.Load(), rej.Load()
}

// TestSpeculativeConcurrentRevalidation is the qrecover-style cross-check
// for the speculative scheduler: after a concurrent burst decided by 4
// workers, the server's state dump must pass VerifyState — every admitted
// tree revalidates against the topology, and re-reserving every session's
// channels on a fresh ledger reproduces the live per-switch occupancy
// exactly. Any speculative commit that double-booked a qubit (validated
// against a stale view without being caught) breaks the occupancy
// re-derivation. Run under -race this also exercises the view/commit
// synchronization.
func TestSpeculativeConcurrentRevalidation(t *testing.T) {
	g := specGraph(t, 11)
	s := newTestServer(t, Config{
		Graph:    g,
		Workers:  4,
		MaxBatch: 8,
		MaxTTL:   time.Hour,
	})

	accepted, rejected := specBurst(t, s, g, 8, 25)
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate burst (%d accepts, %d rejects) — retune the workload", accepted, rejected)
	}

	st := s.StateDump()
	if got := int64(len(st.Sessions)); got != accepted {
		t.Fatalf("%d live sessions for %d accepts", got, accepted)
	}
	if err := VerifyState(g, quantum.DefaultParams(), st); err != nil {
		t.Fatalf("revalidation after concurrent admission: %v", err)
	}

	m := s.Metrics()
	sp := m.Speculation
	if sp == nil {
		t.Fatal("speculative scheduler reported no speculation metrics")
	}
	if sp.Workers != 4 {
		t.Fatalf("speculation workers = %d, want 4", sp.Workers)
	}
	// Every decision is a commit, an epoch-validated reject, a solve-cache
	// replay, or a serial fallback; every conflict either triggered a
	// re-solve or spent the retry budget.
	if sp.Commits+sp.Rejects+sp.CacheHits+sp.Fallbacks != accepted+rejected {
		t.Fatalf("decisions %d+%d+%d+%d don't cover %d requests",
			sp.Commits, sp.Rejects, sp.CacheHits, sp.Fallbacks, accepted+rejected)
	}
	if sp.Conflicts != sp.Resolves+sp.Fallbacks {
		t.Fatalf("conflicts %d != resolves %d + fallbacks %d", sp.Conflicts, sp.Resolves, sp.Fallbacks)
	}
	if sp.Solves < sp.Commits+sp.Rejects {
		t.Fatalf("solves %d below committed outcomes %d", sp.Solves, sp.Commits+sp.Rejects)
	}
	if m.Requests.Accepted != accepted || m.Requests.Rejected != rejected {
		t.Fatalf("request counters %d/%d vs observed %d/%d",
			m.Requests.Accepted, m.Requests.Rejected, accepted, rejected)
	}
}

// TestSpeculativeDurableRecovery runs a concurrent speculative burst with
// the WAL enabled, deletes a few sessions, and requires the recovered state
// to be byte-identical to the live dump — the speculative commit path must
// stage records in mutation order exactly as the serial one does, or replay
// diverges.
func TestSpeculativeDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	g := specGraph(t, 23)
	s, err := New(Config{
		Graph:    g,
		Workers:  4,
		MaxBatch: 8,
		MaxTTL:   time.Hour,
		DataDir:  dir,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	accepted, _ := specBurst(t, s, g, 4, 10)
	if accepted == 0 {
		t.Fatal("burst admitted nothing")
	}
	// Free a little capacity through the DELETE path so releases interleave
	// with the speculative records in the WAL.
	st := s.StateDump()
	for i := 0; i < len(st.Sessions) && i < 3; i++ {
		if err := s.Delete(st.Sessions[i].Info.ID); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	specBurst(t, s, g, 2, 5)

	want := dumpJSON(t, s.StateDump())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, err := Recover(dir, g)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := dumpJSON(t, rec.State); string(got) != string(want) {
		t.Fatalf("recovered state differs\nlive:      %s\nrecovered: %s", want, got)
	}
	if err := VerifyState(g, quantum.DefaultParams(), rec.State); err != nil {
		t.Fatalf("recovered state fails verification: %v", err)
	}
}

// TestSchedulerSelection pins newScheduler's resolution rules: explicit
// names win, empty picks by worker count, unknown names fail construction.
func TestSchedulerSelection(t *testing.T) {
	g := bottleneck(t)
	for _, tc := range []struct {
		name        string
		cfg         Config
		speculative bool
	}{
		{"default-serial", Config{Graph: g}, false},
		{"auto-speculative", Config{Graph: g, Workers: 3}, true},
		{"forced-serial", Config{Graph: g, Workers: 3, Scheduler: SchedulerSerial}, false},
		{"forced-speculative", Config{Graph: g, Scheduler: SchedulerSpeculative}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, tc.cfg)
			if got := s.Metrics().Speculation != nil; got != tc.speculative {
				t.Fatalf("speculative = %v, want %v", got, tc.speculative)
			}
		})
	}
	if _, err := New(Config{Graph: g, Scheduler: "bogus"}); err == nil {
		t.Fatal("unknown scheduler name accepted")
	}
}
