package service

import (
	"sync/atomic"
	"time"

	"github.com/muerp/quantumnet/internal/sched"
)

// latencyBuckets are the upper bounds of the solve-latency histogram, from
// sub-channel-search times up to pathological solves; everything slower
// lands in the +Inf overflow bucket.
var latencyBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// histogram is a fixed-bucket duration histogram with atomic counters, safe
// for concurrent observation.
type histogram struct {
	counts []atomic.Int64 // len(latencyBuckets)+1; the last bucket is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	h.count.Add(1)
	h.sum.Add(int64(d))
	for i, ub := range latencyBuckets {
		if d <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBuckets)].Add(1)
}

func (h *histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count:   h.count.Load(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	if out.Count > 0 {
		out.MeanMs = float64(h.sum.Load()) / float64(out.Count) / 1e6
	}
	for i := range latencyBuckets {
		out.Buckets[i] = Bucket{LeMs: float64(latencyBuckets[i]) / 1e6, Count: h.counts[i].Load()}
	}
	// LeMs 0 marks the +Inf overflow bucket.
	out.Buckets[len(latencyBuckets)] = Bucket{LeMs: 0, Count: h.counts[len(latencyBuckets)].Load()}
	return out
}

// Bucket is one histogram bucket in /metrics. LeMs is the bucket's upper
// bound in milliseconds; 0 marks the +Inf overflow bucket.
type Bucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the serialized form of a latency histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	MeanMs  float64  `json:"mean_ms"`
	Buckets []Bucket `json:"buckets"`
}

// counters are the daemon's monotonic event counts, updated atomically from
// the HTTP handlers and the admission/expiry goroutines.
type counters struct {
	requests        atomic.Int64 // admission requests received (HTTP or Submit)
	queueFull       atomic.Int64 // requests bounced with 429
	throttled       atomic.Int64 // requests bounced by a tenant quota (QoS)
	invalid         atomic.Int64 // requests rejected before queueing (bad users/TTL)
	accepted        atomic.Int64 // sessions admitted
	rejected        atomic.Int64 // requests infeasible under residual capacity
	canceled        atomic.Int64 // requests whose context ended before a decision
	failed          atomic.Int64 // internal solver errors
	expired         atomic.Int64 // sessions released by the expiry wheel
	deleted         atomic.Int64 // sessions released by DELETE
	batches         atomic.Int64 // micro-batches drained by the admission loop
	batchedRequests atomic.Int64 // requests across all batches
	maxBatch        atomic.Int64 // largest batch seen
}

func (c *counters) noteBatch(n int) {
	c.batches.Add(1)
	c.batchedRequests.Add(int64(n))
	for {
		cur := c.maxBatch.Load()
		if int64(n) <= cur || c.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// QueueMetrics describes the admission queue's live state.
type QueueMetrics struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// RequestMetrics aggregates per-request outcomes.
type RequestMetrics struct {
	Total     int64 `json:"total"`
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	QueueFull int64 `json:"queue_full"`
	Throttled int64 `json:"throttled"`
	Invalid   int64 `json:"invalid"`
	Canceled  int64 `json:"canceled"`
	Failed    int64 `json:"failed"`
}

// BatchMetrics aggregates the admission loop's micro-batching behaviour.
type BatchMetrics struct {
	Count    int64   `json:"count"`
	Requests int64   `json:"requests"`
	MaxSize  int64   `json:"max_size"`
	MeanSize float64 `json:"mean_size"`
}

// SessionMetrics aggregates session lifecycle counts.
type SessionMetrics struct {
	Active  int   `json:"active"`
	Expired int64 `json:"expired"`
	Deleted int64 `json:"deleted"`
}

// LedgerMetrics snapshots the live capacity ledger.
type LedgerMetrics struct {
	UsedQubits  int    `json:"used_qubits"`
	FreeQubits  int    `json:"free_qubits"`
	TotalQubits int    `json:"total_qubits"`
	EpochGen    uint64 `json:"epoch_gen"`
}

// Metrics is the JSON document served at GET /metrics. Admission reuses
// sched.Summary so the daemon and the offline simulator report one shared
// representation (acceptance ratio, mean rate, peak qubits, SolveStats).
type Metrics struct {
	UptimeMs     float64           `json:"uptime_ms"`
	Queue        QueueMetrics      `json:"queue"`
	Requests     RequestMetrics    `json:"requests"`
	Batches      BatchMetrics      `json:"batches"`
	SolveLatency HistogramSnapshot `json:"solve_latency"`
	Sessions     SessionMetrics    `json:"sessions"`
	Ledger       LedgerMetrics     `json:"ledger"`
	Admission    sched.Summary     `json:"admission"`
	// Durability reports the WAL/snapshot layer; nil without a data dir.
	Durability *DurabilityMetrics `json:"durability,omitempty"`
	// Speculation reports the speculative scheduler's commit/conflict
	// counters (speculative.go); nil when the serial scheduler is active.
	Speculation *SpeculationMetrics `json:"speculation,omitempty"`
	// SolveCache reports the epoch-keyed solve cache (solvecache.go); nil
	// when disabled via Config.SolveCacheSize < 0.
	SolveCache *SolveCacheMetrics `json:"solve_cache,omitempty"`
	// FootprintPool reports the pooled flat-footprint recycling on the
	// admission hot path.
	FootprintPool *FootprintPoolMetrics `json:"footprint_pool,omitempty"`
	// Tenants is the per-tenant SLO section (qosplane.go); nil without a
	// QoS config. In the sharded plane it is aggregated across shards.
	Tenants []TenantMetrics `json:"tenants,omitempty"`
}
