// Epoch-keyed solve cache (DESIGN.md §10): the admission workloads this
// daemon exists for re-request the same small user groups continuously, and
// BuildGreedyTree is deterministic — identical ledger state yields an
// identical tree. The cache remembers, per sorted user set, the last solved
// outcome together with just enough ledger context to prove a repeat request
// would solve to the same answer, and replays the outcome without running
// the solver:
//
//   - Rejections replay on version equality. Ledger.Version counts every
//     mutation, so an unchanged version means byte-identical budgets and a
//     deterministic solver must reject again. This is the saturation fast
//     path: a full network rejects repeats with zero solver work.
//   - Accepted trees replay on the closure-epoch argument: an unbroken
//     generation whose closures all miss the tree's footprint, plus
//     per-switch budget equivalence against the free counts the original
//     solve started from (min(free, demand+2) must match, which both proves
//     the tree still fits — the authoritative Fits check folded in — and
//     pins the solver's mid-solve closure pattern). Replaying the tree's
//     reservations then evolves budgets, closure log and WAL exactly as a
//     fresh identical solve would have.
//
// Anything weaker misses: budgets that drifted at footprint switches can
// steer the greedy solver to a different tree, so the cache re-solves rather
// than guess. Entries live in a bounded LRU; lookups, hits and stores are
// allocation-free at steady state (the key is built in a reused scratch
// buffer, entry structs and their footprints are recycled in place).
//
// The cache is guarded by the server mutex like the ledger it reasons
// about; in the sharded plane each shard Server carries its own cache, so
// cache state never crosses a shard boundary.
package service

import (
	"context"
	"encoding/binary"
	"errors"
	"slices"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

type cacheVerdict uint8

const (
	cacheAccept cacheVerdict = iota + 1
	cacheReject
)

// cacheEntry is one user set's last solved outcome plus the ledger context
// that scopes its validity. Entries are recycled: clear keeps the footprint
// and freePre storage for the next occupant.
type cacheEntry struct {
	key        string
	prev, next *cacheEntry

	verdict cacheVerdict

	// Reject tier: the ledger mutation version the rejection was decided at
	// and the error to replay.
	version uint64
	err     error

	// Accept tier: the solved tree, its footprint, the free qubits each
	// footprint switch had when the solve started (parallel to the
	// footprint's keys), and the ledger epoch right after the tree's
	// reservations committed.
	tree    quantum.Tree
	fp      *quantum.Footprint
	freePre []int
	epoch   quantum.Epoch
}

func (e *cacheEntry) clear() {
	e.verdict = 0
	e.version = 0
	e.err = nil
	e.tree = quantum.Tree{}
	if e.fp != nil {
		e.fp.Reset()
	}
	e.freePre = e.freePre[:0]
}

// solveCache is the bounded LRU over cacheEntries. All access happens under
// the owning Server's mutex; the counters are plain ints for the same
// reason.
type solveCache struct {
	capacity int
	numNodes int
	entries  map[string]*cacheEntry
	head     *cacheEntry // most recently used
	tail     *cacheEntry // eviction candidate

	idScratch  []graph.NodeID
	keyScratch []byte

	exactHits int64 // rejections replayed on version equality
	epochHits int64 // trees replayed on the closure-epoch proof
	misses    int64 // lookups that had to solve (absent or unprovable)
	stores    int64 // outcomes written into the cache
	evictions int64 // entries dropped by LRU pressure
	warms     int64 // entries re-primed from the persisted warm set at boot
}

func newSolveCache(capacity, numNodes int) *solveCache {
	return &solveCache{
		capacity: capacity,
		numNodes: numNodes,
		entries:  make(map[string]*cacheEntry, capacity),
	}
}

// key builds the canonical lookup key — the sorted user IDs, fixed-width
// encoded — into the reused scratch buffer. The returned slice aliases the
// scratch and is only valid until the next key call.
func (c *solveCache) key(users []graph.NodeID) []byte {
	c.idScratch = append(c.idScratch[:0], users...)
	slices.Sort(c.idScratch)
	c.keyScratch = c.keyScratch[:0]
	for _, id := range c.idScratch {
		c.keyScratch = binary.LittleEndian.AppendUint32(c.keyScratch, uint32(id))
	}
	return c.keyScratch
}

// lookup returns the entry for users (marking it most recently used) or nil.
func (c *solveCache) lookup(users []graph.NodeID) *cacheEntry {
	k := c.key(users)
	e := c.entries[string(k)] // compiles to a no-allocation map probe
	if e != nil {
		c.moveToFront(e)
	}
	return e
}

// upsert returns a cleared entry for users, evicting the LRU tail when the
// cache is full. The evicted entry's struct and storage are reused.
func (c *solveCache) upsert(users []graph.NodeID) *cacheEntry {
	k := c.key(users)
	if e := c.entries[string(k)]; e != nil {
		c.moveToFront(e)
		e.clear()
		c.stores++
		return e
	}
	var e *cacheEntry
	if len(c.entries) >= c.capacity {
		e = c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.evictions++
		e.clear()
		e.key = string(k)
	} else {
		e = &cacheEntry{key: string(k)}
	}
	c.entries[e.key] = e
	c.pushFront(e)
	c.stores++
	return e
}

func (c *solveCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *solveCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *solveCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// cacheDecideLocked consults the solve cache for p's user set and, when the
// cached outcome provably matches what a fresh solve would produce, applies
// it — rejections return the cached error, accepted trees replay their
// reservations and install a session through the ordinary commit machinery
// (same WAL records, same counters). ok=false means the caller must solve.
// The caller holds s.mu.
func (s *Server) cacheDecideLocked(now time.Time, p *pending) (info SessionInfo, err error, ok bool) {
	c := s.cache
	e := c.lookup(p.users)
	if e == nil {
		c.misses++
		return SessionInfo{}, nil, false
	}
	switch e.verdict {
	case cacheReject:
		if s.led.Version() == e.version {
			// No mutation since the rejection was decided: budgets are
			// byte-identical and the deterministic solver would reject again.
			c.exactHits++
			s.ctrs.rejected.Add(1)
			return SessionInfo{}, e.err, true
		}
	case cacheAccept:
		if s.cacheTreeStillExactLocked(e) {
			for i, ch := range e.tree.Channels {
				if rerr := s.led.Reserve(ch.Nodes); rerr != nil {
					// Unreachable given the equivalence proof, but the ledger's
					// own capacity check still guards the replay: roll back and
					// fall through to a real solve.
					for j := i - 1; j >= 0; j-- {
						s.led.Release(e.tree.Channels[j].Nodes)
					}
					c.misses++
					return SessionInfo{}, nil, false
				}
			}
			c.epochHits++
			return s.commitAdmitLocked(now, p, e.tree), nil, true
		}
	}
	c.misses++
	return SessionInfo{}, nil, false
}

// cacheTreeStillExactLocked reports whether a fresh solve for the entry's
// user set would provably rebuild the entry's tree: the closure generation
// is unbroken, no closure since the solve touches the footprint, and every
// footprint switch's free count is equivalent to the one the original solve
// started from — equivalent meaning equal once clamped to demand+2, which
// (a) implies free >= demand, the authoritative fits check, and (b) pins
// whether the solver's own reservations close the switch mid-solve, the
// only budget reading the greedy solver does beyond the >= 2 relay gate.
func (s *Server) cacheTreeStillExactLocked(e *cacheEntry) bool {
	closed, fresh := s.led.ClosedSince(e.epoch)
	if !fresh || e.fp.Touches(closed) {
		return false
	}
	for i, id := range e.fp.Keys() {
		lim := e.fp.Get(id) + 2
		a, b := e.freePre[i], s.led.Free(id)
		if a > lim {
			a = lim
		}
		if b > lim {
			b = lim
		}
		if a != b {
			return false
		}
	}
	return true
}

// cacheStoreAcceptLocked records a committed admission: called with the
// tree's reservations already charged to the live ledger, so each footprint
// switch's pre-solve free count is its current free plus the tree's demand.
// The caller holds s.mu and must only call this when the tree was solved
// against the live ledger state (serial path always; speculative path only
// when the live version still equals the snapshot version).
func (s *Server) cacheStoreAcceptLocked(users []graph.NodeID, tree quantum.Tree) {
	e := s.cache.upsert(users)
	e.verdict = cacheAccept
	e.tree = tree
	if e.fp == nil {
		e.fp = quantum.NewFootprint(s.cache.numNodes)
	}
	e.fp.AddTree(tree)
	for _, id := range e.fp.Keys() {
		e.freePre = append(e.freePre, s.led.Free(id)+e.fp.Get(id))
	}
	e.epoch = s.led.Epoch()
}

// cacheStoreRejectLocked records a rejection decided against the current
// live ledger state. The caller holds s.mu.
func (s *Server) cacheStoreRejectLocked(users []graph.NodeID, err error) {
	e := s.cache.upsert(users)
	e.verdict = cacheReject
	e.version = s.led.Version()
	e.err = err
}

// acceptSetsLocked returns the accept-tier entries' user sets in LRU order
// (most recently used first), decoded from the canonical keys. The caller
// holds s.mu. Used by the snapshotter to persist the warm set.
func (s *Server) acceptSetsLocked() [][]graph.NodeID {
	if s.cache == nil {
		return nil
	}
	sets := make([][]graph.NodeID, 0, len(s.cache.entries))
	for e := s.cache.head; e != nil; e = e.next {
		if e.verdict != cacheAccept {
			continue
		}
		users := make([]graph.NodeID, 0, len(e.key)/4)
		for i := 0; i+4 <= len(e.key); i += 4 {
			users = append(users, graph.NodeID(binary.LittleEndian.Uint32([]byte(e.key[i:i+4]))))
		}
		sets = append(sets, users)
	}
	return sets
}

// warmSolveCache re-primes the solve cache at boot from a previous run's
// accept-tier user sets: each set is solved once against a scratch copy of
// the recovered ledger and the outcome stored under the normal tiers, so
// the first post-restart repeats hit instead of solving.
//
// The scratch view is essential — solving (or reserve-then-release) on the
// live ledger would bump its closure generation and perturb replayed state.
// Because nothing is reserved on the live ledger, an accepted set's
// pre-solve free counts ARE the live free counts, and the stored epoch is
// the live epoch: exactly the context cacheStoreAcceptLocked would record
// had the tree been solved and *not* committed. Called from openDurability
// before the goroutines start, so no lock is needed.
func (s *Server) warmSolveCache(sets [][]graph.NodeID) {
	if s.cache == nil || len(sets) == 0 {
		return
	}
	view := quantum.NewLedger(s.cfg.Graph)
	// Reversed: upsert pushes to the LRU front, so priming oldest-first
	// restores the persisted most-recently-used order.
	for i := len(sets) - 1; i >= 0; i-- {
		prob, err := core.NewProblem(s.cfg.Graph, sets[i], s.cfg.Params)
		if err != nil {
			continue
		}
		view.CopyFrom(s.led)
		tree, err := core.BuildGreedyTree(context.Background(), prob, view, nil)
		switch {
		case err == nil:
			e := s.cache.upsert(prob.Users)
			e.verdict = cacheAccept
			e.tree = tree
			if e.fp == nil {
				e.fp = quantum.NewFootprint(s.cache.numNodes)
			}
			e.fp.AddTree(tree)
			for _, id := range e.fp.Keys() {
				e.freePre = append(e.freePre, s.led.Free(id))
			}
			e.epoch = s.led.Epoch()
			s.cache.warms++
		case errors.Is(err, core.ErrInfeasible):
			s.cacheStoreRejectLocked(prob.Users, err)
			s.cache.warms++
		}
	}
}

// SolveCacheMetrics is the /metrics solve-cache section, present when the
// cache is enabled (Config.SolveCacheSize >= 0).
type SolveCacheMetrics struct {
	// Capacity is the LRU bound, Size the live entry count.
	Capacity int `json:"capacity"`
	Size     int `json:"size"`
	// ExactHits counts rejections replayed on ledger-version equality;
	// EpochHits counts trees replayed on the closure-epoch proof; Misses
	// counts lookups that solved (absent entry or unprovable reuse).
	ExactHits int64 `json:"exact_hits"`
	EpochHits int64 `json:"epoch_hits"`
	Misses    int64 `json:"misses"`
	// Stores counts outcomes written; Evictions entries dropped by LRU
	// pressure; Warmed entries re-primed from the persisted warm set at
	// boot (warm-start restarts begin with a nonzero hit rate).
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Warmed    int64 `json:"warmed"`
	// HitRate is (ExactHits+EpochHits) / lookups.
	HitRate float64 `json:"hit_rate"`
}

// add folds o into m (sharded aggregation); capacities sum, the rate is
// recomputed by the caller via finish.
func (m *SolveCacheMetrics) add(o *SolveCacheMetrics) {
	m.Capacity += o.Capacity
	m.Size += o.Size
	m.ExactHits += o.ExactHits
	m.EpochHits += o.EpochHits
	m.Misses += o.Misses
	m.Stores += o.Stores
	m.Evictions += o.Evictions
	m.Warmed += o.Warmed
}

func (m *SolveCacheMetrics) finish() {
	if n := m.ExactHits + m.EpochHits + m.Misses; n > 0 {
		m.HitRate = float64(m.ExactHits+m.EpochHits) / float64(n)
	}
}

// FootprintPoolMetrics is the /metrics footprint-pool section: how often the
// flat admission path got a pooled footprint versus allocating a fresh one.
type FootprintPoolMetrics struct {
	Gets   int64 `json:"gets"`
	Allocs int64 `json:"allocs"`
	// ReuseRate is (Gets-Allocs)/Gets — 1.0 means fully recycled.
	ReuseRate float64 `json:"reuse_rate"`
}

func (m *FootprintPoolMetrics) add(o *FootprintPoolMetrics) {
	m.Gets += o.Gets
	m.Allocs += o.Allocs
}

func (m *FootprintPoolMetrics) finish() {
	if m.Gets > 0 {
		m.ReuseRate = float64(m.Gets-m.Allocs) / float64(m.Gets)
	}
}

// solveCacheMetricsLocked snapshots the cache counters; caller holds s.mu.
func (s *Server) solveCacheMetricsLocked() *SolveCacheMetrics {
	if s.cache == nil {
		return nil
	}
	m := &SolveCacheMetrics{
		Capacity:  s.cache.capacity,
		Size:      len(s.cache.entries),
		ExactHits: s.cache.exactHits,
		EpochHits: s.cache.epochHits,
		Misses:    s.cache.misses,
		Stores:    s.cache.stores,
		Evictions: s.cache.evictions,
		Warmed:    s.cache.warms,
	}
	m.finish()
	return m
}

func (s *Server) footprintPoolMetrics() *FootprintPoolMetrics {
	gets, news := s.fpPool.Counters()
	m := &FootprintPoolMetrics{Gets: gets, Allocs: news}
	m.finish()
	return m
}
