package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/topology"
)

// TestSolveCacheRejectReplay pins the reject tier: once the bottleneck is
// saturated, repeat rejections replay on ledger-version equality with no
// solver run, and any ledger mutation (a release) invalidates the entry so
// the next request re-solves — and succeeds.
func TestSolveCacheRejectReplay(t *testing.T) {
	base := time.Unix(0, 0)
	fc := newFakeClock(base)
	s := newTestServer(t, Config{MaxBatch: 1, MaxTTL: time.Hour, Clock: fc})

	if _, err := s.Submit(context.Background(), []graph.NodeID{0, 1}, 10*time.Second); err != nil {
		t.Fatalf("first session: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(), []graph.NodeID{2, 3}, 10*time.Second); !errors.Is(err, core.ErrInfeasible) {
			t.Fatalf("contender %d error = %v, want infeasible", i, err)
		}
	}
	m := s.Metrics()
	if m.SolveCache == nil {
		t.Fatal("solve cache disabled by default")
	}
	// First contender solves and stores; the two repeats replay the
	// rejection on version equality.
	if m.SolveCache.ExactHits != 2 {
		t.Fatalf("exact hits = %d, want 2 (%+v)", m.SolveCache.ExactHits, m.SolveCache)
	}

	// Expire the blocking session: the release bumps the ledger version, so
	// the cached rejection no longer replays and a fresh solve admits.
	fc.Set(base.Add(11 * time.Second))
	deadline := time.Now().Add(5 * time.Second)
	for s.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("expiry wheel never released the session")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(context.Background(), []graph.NodeID{2, 3}, 10*time.Second); err != nil {
		t.Fatalf("post-expiry session: %v", err)
	}
	after := s.Metrics().SolveCache
	if after.ExactHits != 2 {
		t.Fatalf("stale rejection replayed after a release: exact hits = %d", after.ExactHits)
	}
}

// solveCacheGraph builds a topology with the given per-switch qubit budget:
// roomy (12) lets the same user set stack repeat admissions so the accept
// tier replays; tight (4) mixes accepts and rejects for the differential.
func solveCacheGraph(t testing.TB, switchQubits int) *graph.Graph {
	t.Helper()
	cfg := topology.Default()
	cfg.Users = 8
	cfg.Switches = 16
	cfg.SwitchQubits = switchQubits
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	return g
}

// userSet maps indices into g.Users() to node IDs (generated topologies
// interleave user and switch IDs).
func userSet(g *graph.Graph, idx ...int) []graph.NodeID {
	all := g.Users()
	out := make([]graph.NodeID, len(idx))
	for i, j := range idx {
		out[i] = all[j]
	}
	return out
}

// TestSolveCacheAcceptReplay pins the accept tier: a repeat request whose
// footprint budgets are provably equivalent replays the cached tree — same
// rate, a distinct session — without running the solver, and the replayed
// reservations are real (sessions stack until capacity runs out exactly as
// fresh solves would).
func TestSolveCacheAcceptReplay(t *testing.T) {
	g := solveCacheGraph(t, 12)
	s := newTestServer(t, Config{Graph: g, MaxBatch: 1, MaxTTL: time.Hour})

	users := userSet(g, 0, 1, 2)
	first, err := s.Submit(context.Background(), users, time.Hour)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	second, err := s.Submit(context.Background(), users, time.Hour)
	if err != nil {
		t.Fatalf("repeat admit: %v", err)
	}
	if second.ID == first.ID {
		t.Fatal("repeat admission reused the session ID")
	}
	if second.Rate != first.Rate {
		t.Fatalf("replayed rate %g != solved rate %g", second.Rate, first.Rate)
	}
	m := s.Metrics()
	if m.SolveCache.EpochHits < 1 {
		t.Fatalf("epoch hits = %d, want >= 1 (%+v)", m.SolveCache.EpochHits, m.SolveCache)
	}
	if m.Sessions.Active != 2 {
		t.Fatalf("active sessions = %d, want 2", m.Sessions.Active)
	}
	// The replay charged real capacity.
	if m.Ledger.UsedQubits == 0 || m.Ledger.UsedQubits%2 != 0 {
		t.Fatalf("used qubits = %d after two admissions", m.Ledger.UsedQubits)
	}
}

// TestSolveCacheDifferentialOnOff replays one repeat-heavy trace through a
// cache-enabled and a cache-disabled server in lockstep and requires
// decision-identical outcomes — same accept/reject sequence, same rates.
// Two capacity regimes pin both tiers: the tight topology saturates, so
// repeat rejections replay on version equality (and accept replays are
// starved by constant budget drift); the roomy one keeps budgets stable
// across repeats, so trees replay on the epoch proof. Expiries (fake clock)
// force releases mid-trace, exercising invalidation.
func TestSolveCacheDifferentialOnOff(t *testing.T) {
	for _, tc := range []struct {
		name         string
		switchQubits int
		wantRejects  bool // tight trace must mix in rejections
		wantExact    bool // reject tier must fire
		wantEpoch    bool // accept tier must fire
	}{
		{name: "tight", switchQubits: 4, wantRejects: true, wantExact: true},
		{name: "roomy", switchQubits: 12, wantEpoch: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			solveCacheDifferential(t, tc.switchQubits, tc.wantRejects, tc.wantExact, tc.wantEpoch)
		})
	}
}

func solveCacheDifferential(t *testing.T, switchQubits int, wantRejects, wantExact, wantEpoch bool) {
	g := solveCacheGraph(t, switchQubits)
	rng := rand.New(rand.NewSource(11))
	// A small pool of user sets sampled with replacement: repeats are the
	// workload the cache exists for.
	pool := [][]graph.NodeID{
		userSet(g, 0, 1, 2), userSet(g, 3, 4), userSet(g, 5, 6, 7),
		userSet(g, 0, 4, 7), userSet(g, 1, 5), userSet(g, 2, 3, 6),
	}

	base := time.Unix(0, 0)
	mk := func(size int) (*Server, *fakeClock) {
		fc := newFakeClock(base)
		s := newTestServer(t, Config{
			Graph: g, MaxBatch: 1, MaxTTL: 1000 * time.Hour,
			Clock: fc, SolveCacheSize: size,
		})
		return s, fc
	}
	on, onClock := mk(0)    // 0 = default capacity, cache enabled
	off, offClock := mk(-1) // negative disables

	accepted, rejected := 0, 0
	at := base
	for i := 0; i < 300; i++ {
		at = at.Add(time.Duration(rng.Intn(900)+100) * time.Millisecond)
		onClock.Set(at)
		offClock.Set(at)
		users := pool[rng.Intn(len(pool))]
		ttl := time.Duration(rng.Intn(20)+2) * time.Second
		onInfo, onErr := on.Submit(context.Background(), users, ttl)
		offInfo, offErr := off.Submit(context.Background(), users, ttl)
		switch {
		case onErr == nil && offErr == nil:
			accepted++
			if math.Abs(onInfo.Rate-offInfo.Rate) > 1e-15*math.Max(1, math.Abs(offInfo.Rate)) {
				t.Fatalf("request %d: cached rate %g vs uncached %g", i, onInfo.Rate, offInfo.Rate)
			}
		case errors.Is(onErr, core.ErrInfeasible) && errors.Is(offErr, core.ErrInfeasible):
			rejected++
		default:
			t.Fatalf("request %d (%v): cache-on err %v vs cache-off err %v", i, users, onErr, offErr)
		}
	}
	if accepted == 0 {
		t.Fatal("degenerate trace: nothing accepted — retune the workload")
	}
	if wantRejects && rejected == 0 {
		t.Fatal("degenerate trace: nothing rejected — retune the workload")
	}

	onM, offM := on.Metrics(), off.Metrics()
	if offM.SolveCache != nil {
		t.Fatal("cache-off server reports solve-cache metrics")
	}
	sc := onM.SolveCache
	if sc == nil {
		t.Fatal("cache-on server reports no solve-cache metrics")
	}
	if wantExact && sc.ExactHits == 0 {
		t.Fatalf("trace never exercised the reject tier: %+v", sc)
	}
	if wantEpoch && sc.EpochHits == 0 {
		t.Fatalf("trace never exercised the accept tier: %+v", sc)
	}
	if onM.Requests.Accepted != offM.Requests.Accepted || onM.Requests.Rejected != offM.Requests.Rejected {
		t.Fatalf("counters diverge: cache-on %d/%d vs cache-off %d/%d",
			onM.Requests.Accepted, onM.Requests.Rejected, offM.Requests.Accepted, offM.Requests.Rejected)
	}
	if onM.Admission.PeakQubitsInUse != offM.Admission.PeakQubitsInUse {
		t.Fatalf("peak qubits diverge: %d vs %d", onM.Admission.PeakQubitsInUse, offM.Admission.PeakQubitsInUse)
	}
}

// TestSolveCacheLRUEviction pins the bound: a capacity-2 cache holding
// three distinct user sets evicts the least recently used and stays at
// size 2; the evicted set misses on its next lookup.
func TestSolveCacheLRUEviction(t *testing.T) {
	g := solveCacheGraph(t, 12)
	s := newTestServer(t, Config{Graph: g, MaxBatch: 1, MaxTTL: time.Hour, SolveCacheSize: 2})

	sets := [][]graph.NodeID{userSet(g, 0, 1), userSet(g, 2, 3), userSet(g, 4, 5)}
	for _, u := range sets {
		if _, err := s.Submit(context.Background(), u, time.Hour); err != nil {
			t.Fatalf("admit %v: %v", u, err)
		}
	}
	m := s.Metrics().SolveCache
	if m.Size != 2 || m.Capacity != 2 {
		t.Fatalf("size/capacity = %d/%d, want 2/2", m.Size, m.Capacity)
	}
	if m.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", m.Evictions)
	}
	// The first set was evicted by the third; its repeat must miss. The
	// third is resident and replays.
	if _, err := s.Submit(context.Background(), sets[0], time.Hour); err != nil {
		t.Fatalf("re-admit evicted set: %v", err)
	}
	if _, err := s.Submit(context.Background(), sets[2], time.Hour); err != nil {
		t.Fatalf("re-admit resident set: %v", err)
	}
	after := s.Metrics().SolveCache
	if after.EpochHits != 1 {
		t.Fatalf("epoch hits = %d, want exactly 1 (evicted set must re-solve)", after.EpochHits)
	}
}

// TestSolveCacheKeyOrderInsensitive pins key canonicalization: the same
// user set in a different order is the same cache line.
func TestSolveCacheKeyOrderInsensitive(t *testing.T) {
	g := solveCacheGraph(t, 12)
	s := newTestServer(t, Config{Graph: g, MaxBatch: 1, MaxTTL: time.Hour})

	if _, err := s.Submit(context.Background(), userSet(g, 2, 0, 1), time.Hour); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if _, err := s.Submit(context.Background(), userSet(g, 1, 2, 0), time.Hour); err != nil {
		t.Fatalf("permuted repeat: %v", err)
	}
	m := s.Metrics().SolveCache
	if m.EpochHits != 1 || m.Size != 1 {
		t.Fatalf("permuted set missed: hits=%d size=%d (%+v)", m.EpochHits, m.Size, m)
	}
}
