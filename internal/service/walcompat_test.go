package service

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// The PR-9 tenant field rides on SessionInfo and releaseRecord with
// omitempty, which carries a compatibility promise in both directions:
//
//   - backward: WAL frames written by pre-tenant builds (no "tenant" key)
//     must decode under the tagged schema as default-tenant traffic and
//     replay to the identical state;
//   - forward: frames written by this build for the default tenant must be
//     byte-identical to what the old schema would have written, so a
//     rollback to a pre-tenant binary replays them unchanged.
//
// These tests pin both directions with frozen copies of the old structs and
// literal old-format frame payloads.

// oldSessionInfo is the pre-PR-9 SessionInfo wire schema, frozen.
type oldSessionInfo struct {
	ID         string         `json:"id"`
	Users      []graph.NodeID `json:"users"`
	Rate       float64        `json:"rate"`
	Channels   int            `json:"channels"`
	AdmittedAt time.Time      `json:"admitted_at"`
	ExpiresAt  time.Time      `json:"expires_at"`
}

// oldReleaseRecord is the pre-PR-9 releaseRecord wire schema, frozen.
type oldReleaseRecord struct {
	ID     string    `json:"id"`
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
}

// TestWALDefaultTenantBytesMatchOldSchema marshals the same logical records
// through the old and new schemas and requires identical bytes for the
// default tenant — the forward-compatibility half of the promise.
func TestWALDefaultTenantBytesMatchOldSchema(t *testing.T) {
	at := time.Unix(30, 0).UTC()
	admitted := time.Unix(10, 0).UTC()
	expires := time.Unix(70, 0).UTC()

	newInfo := SessionInfo{
		ID: "s-1", Users: []graph.NodeID{0, 1}, Rate: 0.5, Channels: 1,
		AdmittedAt: admitted, ExpiresAt: expires,
	}
	oldInfo := oldSessionInfo{
		ID: "s-1", Users: []graph.NodeID{0, 1}, Rate: 0.5, Channels: 1,
		AdmittedAt: admitted, ExpiresAt: expires,
	}
	ni, _ := json.Marshal(newInfo)
	oi, _ := json.Marshal(oldInfo)
	if string(ni) != string(oi) {
		t.Fatalf("default-tenant SessionInfo bytes drifted\nnew: %s\nold: %s", ni, oi)
	}

	nr, _ := json.Marshal(releaseRecord{ID: "s-1", Reason: "deleted", At: at})
	or, _ := json.Marshal(oldReleaseRecord{ID: "s-1", Reason: "deleted", At: at})
	if string(nr) != string(or) {
		t.Fatalf("default-tenant releaseRecord bytes drifted\nnew: %s\nold: %s", nr, or)
	}

	// A tagged tenant must show on the wire — and only then.
	newInfo.Tenant = "gold"
	tagged, _ := json.Marshal(newInfo)
	if string(tagged) == string(oi) {
		t.Fatal("tagged SessionInfo serialized identically to the old schema")
	}
	var back SessionInfo
	if err := json.Unmarshal(tagged, &back); err != nil || back.Tenant != "gold" {
		t.Fatalf("tagged SessionInfo round trip: err=%v tenant=%q", err, back.Tenant)
	}
}

// TestWALOldFormatFramesReplay feeds literal pre-tenant frame payloads —
// bytes exactly as an old binary would have logged them — through the WAL
// replay machinery and requires the rebuilt state: the session appears
// under the default tenant, its reservations charge the ledger, and the
// release refunds them. The backward-compatibility half of the promise.
func TestWALOldFormatFramesReplay(t *testing.T) {
	g := bottleneck(t)
	rs := newReplayState(g)

	admit := []byte(`{"t":"admit","admit":{"info":{"id":"s-1","users":[0,1],"rate":0.5,"channels":1,"admitted_at":"1970-01-01T00:00:10Z","expires_at":"1970-01-01T00:01:10Z"},"tree":{"Channels":[{"Nodes":[0,4,1],"Rate":0.5}]},"next_id":1}}`)
	if err := rs.apply(1, admit); err != nil {
		t.Fatalf("apply old admit: %v", err)
	}
	sess, ok := rs.sessions["s-1"]
	if !ok {
		t.Fatal("old-format admit did not install the session")
	}
	if sess.info.Tenant != "" {
		t.Fatalf("old-format admit decoded tenant %q, want default (empty)", sess.info.Tenant)
	}
	if free := rs.led.Free(4); free != 0 {
		t.Fatalf("switch free after admit = %d, want 0", free)
	}

	release := []byte(`{"t":"release","release":{"id":"s-1","reason":"deleted","at":"1970-01-01T00:00:30Z"}}`)
	if err := rs.apply(2, release); err != nil {
		t.Fatalf("apply old release: %v", err)
	}
	if _, ok := rs.sessions["s-1"]; ok {
		t.Fatal("old-format release did not remove the session")
	}
	if free := rs.led.Free(4); free != 2 {
		t.Fatalf("switch free after release = %d, want 2", free)
	}

	// A tenant-tagged frame from this build decodes alongside old frames in
	// the same log stream.
	tagged := []byte(`{"t":"admit","admit":{"info":{"id":"s-2","users":[2,3],"tenant":"gold","rate":0.5,"channels":1,"admitted_at":"1970-01-01T00:00:40Z","expires_at":"1970-01-01T00:01:40Z"},"tree":{"Channels":[{"Nodes":[2,4,3],"Rate":0.5}]},"next_id":2}}`)
	if err := rs.apply(3, tagged); err != nil {
		t.Fatalf("apply tagged admit: %v", err)
	}
	if got := rs.sessions["s-2"].info.Tenant; got != "gold" {
		t.Fatalf("tagged admit decoded tenant %q, want gold", got)
	}
	if rs.nextID != 2 {
		t.Fatalf("nextID = %d, want 2", rs.nextID)
	}

	// The live record path agrees with the frozen literals: what the server
	// would log for a default-tenant admit matches the old format key set.
	b, _ := json.Marshal(walRecord{T: recAdmit, Admit: &admitRecord{
		Info: SessionInfo{
			ID: "s-1", Users: []graph.NodeID{0, 1}, Rate: 0.5, Channels: 1,
			AdmittedAt: time.Unix(10, 0).UTC(), ExpiresAt: time.Unix(70, 0).UTC(),
		},
		Tree:   quantum.Tree{Channels: []quantum.Channel{{Nodes: []graph.NodeID{0, 4, 1}, Rate: 0.5}}},
		NextID: 1,
	}})
	if string(b) != string(admit) {
		t.Fatalf("live default-tenant admit frame drifted from the golden old-format frame\nlive:   %s\ngolden: %s", b, admit)
	}
}
