package service

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
)

// scheduler is the admission-execution seam (DESIGN.md §8): the admission
// loop fills micro-batches and hands each one to the configured scheduler,
// which decides every request (solve, commit or reject, make it durable)
// and delivers each result on its pending channel before decide returns.
//
// Two implementations exist today:
//
//   - serialScheduler: the PR-4 micro-batch loop — every solve runs against
//     the live ledger under one mutex acquisition per batch.
//   - speculativeScheduler: N workers solve in parallel against consistent
//     ledger views and validate-and-commit under the mutex using the
//     closure epochs (speculative.go).
//
// The seam is also where per-tenant quotas, priority classes and sharding
// plug in later (ROADMAP): those are alternative decide orderings over the
// same commit machinery.
type scheduler interface {
	// decide decides a whole micro-batch. It must deliver exactly one
	// result per request and only return once every decision is durable.
	decide(batch []*pending)
	// speculation reports the scheduler's speculation counters for
	// /metrics; nil when the scheduler never speculates.
	speculation() *SpeculationMetrics
}

// Scheduler names accepted by Config.Scheduler.
const (
	SchedulerSerial      = "serial"
	SchedulerSpeculative = "speculative"
)

// newScheduler resolves the configured scheduler. An empty name picks by
// worker count: one worker runs serial, more run speculative.
func newScheduler(s *Server, cfg Config) (scheduler, error) {
	name := cfg.Scheduler
	if name == "" {
		if cfg.Workers > 1 {
			name = SchedulerSpeculative
		} else {
			name = SchedulerSerial
		}
	}
	switch name {
	case SchedulerSerial:
		return &serialScheduler{s: s}, nil
	case SchedulerSpeculative:
		return newSpeculativeScheduler(s, cfg), nil
	default:
		return nil, fmt.Errorf("service: unknown scheduler %q (want %q or %q)",
			cfg.Scheduler, SchedulerSerial, SchedulerSpeculative)
	}
}

// serialScheduler decides a whole batch under one lock acquisition: expiry
// runs once at the batch's admission instant, then every request solves
// against the shared ledger in arrival order. Keeping Release out of the
// solve sequence keeps ledger epochs monotone across the batch, so the
// incremental search cache never invalidates wholesale mid-batch.
type serialScheduler struct {
	s *Server
}

func (sc *serialScheduler) speculation() *SpeculationMetrics { return nil }

func (sc *serialScheduler) decide(batch []*pending) {
	s := sc.s
	s.ctrs.noteBatch(len(batch))
	results := make([]admitResult, len(batch))
	s.mu.Lock()
	now := s.clock.Now()
	s.expireLocked(now)
	for i, p := range batch {
		info, err := s.admitOneLocked(now, p)
		results[i] = admitResult{info: info, err: err}
	}
	// Hand the batch's records (expiries + admits, in mutation order) to the
	// WAL while still holding the lock: WAL order is mutation order.
	ticket := s.enqueueRecordsLocked()
	s.mu.Unlock()
	// Write-ahead contract: decisions reach disk before any caller hears
	// them. One fsync covers the whole batch (group commit).
	_ = s.waitDurable(ticket)
	for i, p := range batch {
		p.finish(results[i])
	}
	s.wakeExpiry()
}

// admitOneLocked decides one request against the live ledger under s.mu —
// the serial scheduler's per-request step, and the speculative scheduler's
// authoritative fallback once a request exhausts its retry budget.
func (s *Server) admitOneLocked(now time.Time, p *pending) (SessionInfo, error) {
	if err := p.ctx.Err(); err != nil {
		s.ctrs.canceled.Add(1)
		return SessionInfo{}, err
	}
	// Repeat request? The solve cache replays the last outcome for this user
	// set when the ledger provably leads a fresh solve to the same answer
	// (solvecache.go) — the whole BuildGreedyTree call is skipped.
	if s.cache != nil {
		if info, err, ok := s.cacheDecideLocked(now, p); ok {
			return info, err
		}
	}
	var st core.SolveStats
	genBefore := s.led.Epoch().Gen
	t0 := time.Now()
	tree, err := core.BuildGreedyTree(p.ctx, p.prob, s.led, &core.SolveOptions{Stats: &st})
	s.lat.observe(time.Since(t0))
	s.work.Merge(&st)
	if err != nil {
		switch sched.Classify(p.ctx.Err(), err) {
		case sched.VerdictRejected:
			s.ctrs.rejected.Add(1)
			if s.cache != nil {
				// The rolled-back solve left the budgets exactly as a repeat
				// would find them; version equality scopes the replay.
				s.cacheStoreRejectLocked(p.users, err)
			}
		case sched.VerdictAborted:
			if p.ctx.Err() != nil {
				// The request's deadline fired mid-solve; BuildGreedyTree
				// rolled every reservation back.
				s.ctrs.canceled.Add(1)
			} else {
				s.ctrs.failed.Add(1)
			}
		}
		// A rolled-back attempt leaves the budgets untouched but its
		// reopening releases may have bumped the closure generation; log the
		// bump so replay lands on the identical epoch.
		if gen := s.led.Epoch().Gen; gen != genBefore {
			s.appendRecordLocked(walRecord{T: recEpoch, Epoch: &epochRecord{Gen: gen}})
		}
		return SessionInfo{}, err
	}
	info := s.commitAdmitLocked(now, p, tree)
	if s.cache != nil {
		s.cacheStoreAcceptLocked(p.users, tree)
	}
	return info, nil
}

// commitAdmitLocked installs an admitted session whose tree reservations
// are already charged to the live ledger: it assigns the ID, inserts the
// session into the table and expiry heap, updates the aggregates and
// stages the WAL admit record. Callers hold s.mu.
func (s *Server) commitAdmitLocked(now time.Time, p *pending, tree quantum.Tree) SessionInfo {
	id := fmt.Sprintf("%s%d", s.idPrefix, s.nextID.Add(1))
	sess := &session{
		info: SessionInfo{
			ID:         id,
			Users:      p.users,
			Tenant:     p.tenant,
			Rate:       tree.Rate(),
			Channels:   len(tree.Channels),
			AdmittedAt: now,
			ExpiresAt:  now.Add(p.ttl),
		},
		tree:      tree,
		expiresAt: now.Add(p.ttl),
	}
	s.sessions[id] = sess
	heap.Push(&s.expiry, sess)
	s.ctrs.accepted.Add(1)
	s.sumRate += sess.info.Rate
	if used := s.led.UsedQubits(); used > s.peak {
		s.peak = used
	}
	s.appendRecordLocked(walRecord{T: recAdmit, Admit: &admitRecord{
		Info:   sess.info,
		Tree:   tree,
		NextID: s.nextID.Load(),
	}})
	return sess.info
}

// errSpecConflict reports a speculative validation failure: the live
// ledger moved past the view the solve ran against. Internal to the
// speculative scheduler's retry loop; never delivered to callers.
var errSpecConflict = errors.New("service: speculative validation conflict")
