package service

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/topology"
)

var benchSeed atomic.Int64

// benchGraph is a paper-scale network: 10 users, 30 switches, 4 qubits.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	cfg := topology.Default()
	cfg.Users = 10
	cfg.Switches = 30
	cfg.SwitchQubits = 4
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatalf("topology: %v", err)
	}
	return g
}

// benchGraphBig is the solve-bound network the speculative variants run on:
// 12 users and 64 well-provisioned switches make each BuildGreedyTree search
// long enough that parallel solving, not lock hand-off, dominates.
func benchGraphBig(b *testing.B) *graph.Graph {
	b.Helper()
	cfg := topology.Default()
	cfg.Users = 12
	cfg.Switches = 64
	cfg.SwitchQubits = 8
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatalf("topology: %v", err)
	}
	return g
}

// benchGraphHot is benchGraphBig with well-provisioned switches (32 qubits):
// switches never close, so generations never bump and repeat requests stay
// budget-equivalent — the solve cache's home regime (recurring user groups
// on a network with headroom).
func benchGraphHot(b *testing.B) *graph.Graph {
	b.Helper()
	cfg := topology.Default()
	cfg.Users = 12
	cfg.Switches = 64
	cfg.SwitchQubits = 32
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatalf("topology: %v", err)
	}
	return g
}

// BenchmarkAdmissionLoop measures end-to-end Submit latency through the
// queue, the batching loop and the shared-ledger solver, with short TTLs so
// the expiry wheel keeps reclaiming capacity under load. Sub-benchmarks
// vary the micro-batch size; parallel clients stress the batch-fill path.
// The durable variants run the same load with the WAL enabled, so the
// delta is the group-commit cost: one fsync per admission batch, amortised
// across every request that shares it.
//
// The big* variants move to the solve-bound benchGraphBig and sweep the
// speculative scheduler's worker count against the big-workers1 serial
// baseline: the workersN / workers1 ratio is the speculation speedup, and
// it only materialises with GOMAXPROCS >= N — on a single-core runner the
// variants measure speculation overhead (snapshot + validate) instead.
func BenchmarkAdmissionLoop(b *testing.B) {
	// The hot-repeats pair replays a small pool of user sets — the workload
	// the solve cache exists for — once with the cache (default) and once
	// with it disabled; the delta is the cached-replay win and the cache-on
	// run reports its measured hit rate.
	for _, bench := range []struct {
		name     string
		maxBatch int
		durable  bool
		workers  int
		big      bool
		hot      bool
		nocache  bool
	}{
		{name: "batch1", maxBatch: 1},
		{name: "batch16", maxBatch: 16},
		{name: "batch1-durable", maxBatch: 1, durable: true},
		{name: "batch8-durable", maxBatch: 8, durable: true},
		{name: "batch16-durable", maxBatch: 16, durable: true},
		{name: "big-workers1", maxBatch: 16, big: true},
		{name: "big-workers2", maxBatch: 16, workers: 2, big: true},
		{name: "big-workers4", maxBatch: 16, workers: 4, big: true},
		{name: "big-workers4-durable", maxBatch: 16, workers: 4, big: true, durable: true},
		{name: "hot-repeats", maxBatch: 16, hot: true},
		{name: "hot-repeats-nocache", maxBatch: 16, hot: true, nocache: true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			g := benchGraph(b)
			if bench.big {
				g = benchGraphBig(b)
			}
			if bench.hot {
				g = benchGraphHot(b)
			}
			cfg := Config{
				Graph:      g,
				QueueSize:  1024,
				MaxBatch:   bench.maxBatch,
				MaxWait:    200 * time.Microsecond,
				DefaultTTL: 2 * time.Millisecond,
				MaxTTL:     time.Second,
				Workers:    bench.workers,
			}
			if bench.durable {
				cfg.DataDir = b.TempDir()
				// Push snapshots out of the window: the variant isolates
				// the per-batch WAL fsync, not the snapshot cadence.
				cfg.SnapshotEvery = 1 << 30
				cfg.SnapshotInterval = time.Hour
			}
			if bench.nocache {
				cfg.SolveCacheSize = -1
			}
			s, err := New(cfg)
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			defer func() { _ = s.Close() }()
			users := g.Users()
			var hotPool [][]graph.NodeID
			if bench.hot {
				prng := rand.New(rand.NewSource(99))
				for i := 0; i < 8; i++ {
					size := 2 + prng.Intn(2)
					perm := prng.Perm(len(users))
					set := make([]graph.NodeID, size)
					for j := range set {
						set[j] = users[perm[j]]
					}
					hotPool = append(hotPool, set)
				}
			}
			var accepted, rejected, other atomic.Int64
			if bench.big || bench.hot {
				// Keep several clients per core in flight so micro-batches
				// actually fill and the worker sweep has work to spread, even
				// on small runners.
				b.SetParallelism(8)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(benchSeed.Add(1)))
				members := make([]graph.NodeID, 0, 3)
				for pb.Next() {
					if bench.hot {
						members = hotPool[rng.Intn(len(hotPool))]
					} else {
						members = members[:0]
						size := 2 + rng.Intn(2)
						perm := rng.Perm(len(users))
						for i := 0; i < size; i++ {
							members = append(members, users[perm[i]])
						}
					}
					_, err := s.Submit(context.Background(), members, 2*time.Millisecond)
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, core.ErrInfeasible), errors.Is(err, ErrQueueFull):
						rejected.Add(1)
					default:
						other.Add(1)
					}
				}
			})
			b.StopTimer()
			if other.Load() > 0 {
				b.Fatalf("%d submissions failed with unexpected errors", other.Load())
			}
			total := accepted.Load() + rejected.Load()
			if total > 0 {
				b.ReportMetric(float64(accepted.Load())/float64(total), "accept-ratio")
			}
			m := s.Metrics()
			if m.Batches.Count > 0 {
				b.ReportMetric(m.Batches.MeanSize, "batch-size")
			}
			if sp := m.Speculation; sp != nil && sp.Solves > 0 && total > 0 {
				b.ReportMetric(sp.WastedSolveRatio, "wasted-solves")
				b.ReportMetric(float64(sp.Fallbacks)/float64(total), "fallback-ratio")
				b.ReportMetric(float64(sp.MaxParallel), "max-parallel")
			}
			if sc := m.SolveCache; sc != nil && sc.ExactHits+sc.EpochHits+sc.Misses > 0 {
				b.ReportMetric(sc.HitRate, "cache-hit-rate")
			}
			if fpm := m.FootprintPool; fpm != nil && fpm.Gets > 0 {
				b.ReportMetric(fpm.ReuseRate, "fp-reuse")
			}
		})
	}
}
