package service

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/topology"
)

var benchSeed atomic.Int64

// benchGraph is a paper-scale network: 10 users, 30 switches, 4 qubits.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	cfg := topology.Default()
	cfg.Users = 10
	cfg.Switches = 30
	cfg.SwitchQubits = 4
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatalf("topology: %v", err)
	}
	return g
}

// BenchmarkAdmissionLoop measures end-to-end Submit latency through the
// queue, the batching loop and the shared-ledger solver, with short TTLs so
// the expiry wheel keeps reclaiming capacity under load. Sub-benchmarks
// vary the micro-batch size; parallel clients stress the batch-fill path.
// The durable variants run the same load with the WAL enabled, so the
// delta is the group-commit cost: one fsync per admission batch, amortised
// across every request that shares it.
func BenchmarkAdmissionLoop(b *testing.B) {
	for _, bench := range []struct {
		name     string
		maxBatch int
		durable  bool
	}{
		{"batch1", 1, false},
		{"batch16", 16, false},
		{"batch1-durable", 1, true},
		{"batch8-durable", 8, true},
		{"batch16-durable", 16, true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			g := benchGraph(b)
			cfg := Config{
				Graph:      g,
				QueueSize:  1024,
				MaxBatch:   bench.maxBatch,
				MaxWait:    200 * time.Microsecond,
				DefaultTTL: 2 * time.Millisecond,
				MaxTTL:     time.Second,
			}
			if bench.durable {
				cfg.DataDir = b.TempDir()
				// Push snapshots out of the window: the variant isolates
				// the per-batch WAL fsync, not the snapshot cadence.
				cfg.SnapshotEvery = 1 << 30
				cfg.SnapshotInterval = time.Hour
			}
			s, err := New(cfg)
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			defer func() { _ = s.Close() }()
			users := g.Users()
			var accepted, rejected, other atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(benchSeed.Add(1)))
				members := make([]graph.NodeID, 0, 3)
				for pb.Next() {
					members = members[:0]
					size := 2 + rng.Intn(2)
					perm := rng.Perm(len(users))
					for i := 0; i < size; i++ {
						members = append(members, users[perm[i]])
					}
					_, err := s.Submit(context.Background(), members, 2*time.Millisecond)
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, core.ErrInfeasible), errors.Is(err, ErrQueueFull):
						rejected.Add(1)
					default:
						other.Add(1)
					}
				}
			})
			b.StopTimer()
			if other.Load() > 0 {
				b.Fatalf("%d submissions failed with unexpected errors", other.Load())
			}
			total := accepted.Load() + rejected.Load()
			if total > 0 {
				b.ReportMetric(float64(accepted.Load())/float64(total), "accept-ratio")
			}
			m := s.Metrics()
			if m.Batches.Count > 0 {
				b.ReportMetric(m.Batches.MeanSize, "batch-size")
			}
		})
	}
}
