package service

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/qos"
)

// This file wires the internal/qos subsystem in front of the admission loop
// (DESIGN.md §11). With Config.QoS set, the bounded FIFO channel is replaced
// by the qos.Scheduler — per-tenant bounded sub-queues drained strict-
// priority-first with deficit-weighted round-robin — as the queue/ordering
// layer behind the PR-6 scheduler seam: the admission loop dequeues in QoS
// order and hands micro-batches to the very same serial or speculative
// scheduler, so solving, the ledger, durability and sharding are untouched.
// A shared token-bucket limiter throttles over-rate tenants at Submit time
// (HTTP 429 + Retry-After), before anything is queued.
//
// Tenant identity on the wire: the empty string is the default tenant
// everywhere inside the service (pending.tenant, SessionInfo.Tenant, WAL
// records), so default-tenant records marshal byte-identically to the
// pre-tenant schema and old WAL frames decode as default-tenant traffic.
// The qos package's name space ("default") appears only at the qos API
// boundary (wireTenant / qosName).

// wireTenant folds a request's tenant name onto the service's wire form:
// "" is the default tenant. With a QoS config, unknown names fall back to
// the default class (they are served, rate-limited and accounted there);
// without one there is no registry to resolve against, so any name is kept
// verbatim and merely tags the session.
func (s *Server) wireTenant(name string) string {
	if name == qos.DefaultTenant {
		return ""
	}
	if s.qcfg == nil || name == "" {
		return name
	}
	if _, ok := s.qcfg.Tenant(name); ok {
		return name
	}
	return ""
}

// qosName maps a wire tenant name onto the qos package's namespace.
func qosName(wire string) string {
	if wire == "" {
		return qos.DefaultTenant
	}
	return wire
}

// tenantStat is one tenant's SLO accounting: outcome counters plus the
// admission-latency histogram (enqueue to decision, wall clock). All fields
// are atomic — stats are written from Submit, the admission loop and the
// speculative workers concurrently.
type tenantStat struct {
	spec qos.TenantSpec

	accepted   atomic.Int64
	rejected   atomic.Int64
	throttled  atomic.Int64
	queueFull  atomic.Int64
	canceled   atomic.Int64
	failed     atomic.Int64
	ttlClamped atomic.Int64
	lat        *histogram
}

// clampTTL applies the tenant's session-lifetime cap on top of the
// server-wide one, counting every request it shortens. A nil stat (no QoS
// config) or an uncapped tenant returns the TTL unchanged.
func (st *tenantStat) clampTTL(ttl time.Duration) time.Duration {
	if st == nil || st.spec.MaxTTLMs <= 0 {
		return ttl
	}
	if cap := st.spec.MaxTTL(); ttl > cap {
		st.ttlClamped.Add(1)
		return cap
	}
	return ttl
}

// note records one decided request's outcome and admission latency.
// Shutdown bounces, invalid requests and pre-queue rejections (throttle,
// queue-full) are counted elsewhere or not at all.
func (st *tenantStat) note(err error, lat time.Duration) {
	switch {
	case err == nil:
		st.accepted.Add(1)
	case errors.Is(err, core.ErrInfeasible):
		st.rejected.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		st.canceled.Add(1)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrInvalidRequest),
		errors.Is(err, qos.ErrThrottled), errors.Is(err, ErrQueueFull):
		return
	default:
		st.failed.Add(1)
	}
	st.lat.observe(lat)
}

// tenantTable maps wire tenant names to their stats. Built once at New from
// the normalized config, read-only afterwards — lookups need no lock.
type tenantTable struct {
	stats map[string]*tenantStat
}

func newTenantTable(c *qos.Config) *tenantTable {
	t := &tenantTable{stats: make(map[string]*tenantStat, len(c.Tenants))}
	for _, spec := range c.Tenants {
		wire := spec.ID
		if wire == qos.DefaultTenant {
			wire = ""
		}
		t.stats[wire] = &tenantStat{spec: spec, lat: newHistogram()}
	}
	return t
}

func (t *tenantTable) get(wire string) *tenantStat {
	if t == nil {
		return nil
	}
	return t.stats[wire]
}

// finish records the request's per-tenant outcome and delivers the result.
// Every decision path (serial, speculative, drain, close-bounce) funnels
// through here so tenant SLO counters cannot drift from delivered results.
func (p *pending) finish(r admitResult) {
	if p.stat != nil {
		p.stat.note(r.err, time.Since(p.enq))
	}
	p.result <- r
}

// wakeAdmission signals the QoS admission loop that an item was enqueued.
// The channel is sticky (capacity 1): a signal is never lost, and the loop
// drains the scheduler until empty per wakeup, so coalesced signals are
// fine.
func (s *Server) wakeAdmission() {
	select {
	case s.arrive <- struct{}{}:
	default:
	}
}

// qosAdmissionLoop is admissionLoop's QoS-mode body: the single consumer of
// the qos.Scheduler. Each wakeup drains the scheduler in QoS order (strict
// priority, DWRR, anti-starvation share), batching exactly like the FIFO
// loop so with one tenant the decision sequence is identical (pinned by the
// differential test).
func (s *Server) qosAdmissionLoop() {
	for {
		select {
		case <-s.quit:
			s.drainQoS()
			return
		case <-s.arrive:
			for {
				item, _, ok := s.qsched.Dequeue()
				if !ok {
					break
				}
				s.sched.decide(s.fillBatchQoS(item.(*pending)))
			}
		}
	}
}

// fillBatchQoS mirrors fillBatch over the QoS scheduler: it keeps dequeuing
// until the batch is full, MaxWait elapses after the first request, or
// shutdown starts.
func (s *Server) fillBatchQoS(first *pending) []*pending {
	batch := append(make([]*pending, 0, s.cfg.MaxBatch), first)
	var timeout <-chan time.Time
	for len(batch) < s.cfg.MaxBatch {
		if item, _, ok := s.qsched.Dequeue(); ok {
			batch = append(batch, item.(*pending))
			continue
		}
		if s.cfg.MaxWait <= 0 {
			return batch
		}
		if timeout == nil {
			timeout = s.clock.After(s.cfg.MaxWait)
		}
		select {
		case <-s.arrive:
		case <-timeout:
			return batch
		case <-s.quit:
			return batch
		}
	}
	return batch
}

// drainQoS decides everything still queued at shutdown, one final batch at
// a time, in QoS order.
func (s *Server) drainQoS() {
	for {
		item, _, ok := s.qsched.Dequeue()
		if !ok {
			return
		}
		batch := append(make([]*pending, 0, s.cfg.MaxBatch), item.(*pending))
		for len(batch) < s.cfg.MaxBatch {
			if it, _, ok := s.qsched.Dequeue(); ok {
				batch = append(batch, it.(*pending))
			} else {
				break
			}
		}
		s.sched.decide(batch)
	}
}

// TenantMetrics is one tenant's SLO section in /metrics: its configured
// class, live queue occupancy, outcome counters and admission-latency
// histogram (accepted/rejected/canceled decisions, enqueue to delivery).
type TenantMetrics struct {
	ID         string  `json:"id"`
	Weight     int     `json:"weight"`
	Priority   int     `json:"priority,omitempty"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	MaxTTLMs   int64   `json:"max_ttl_ms,omitempty"`

	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`

	Accepted   int64 `json:"accepted"`
	Rejected   int64 `json:"rejected"`
	Throttled  int64 `json:"throttled"`
	QueueFull  int64 `json:"queue_full"`
	Canceled   int64 `json:"canceled"`
	Failed     int64 `json:"failed"`
	TTLClamped int64 `json:"ttl_clamped"`

	AdmissionLatency HistogramSnapshot `json:"admission_latency"`
}

// tenantMetrics snapshots the per-tenant SLO section; nil without a QoS
// config.
func (s *Server) tenantMetrics() []TenantMetrics {
	if s.tstats == nil {
		return nil
	}
	depth := make(map[string]qos.QueueStat)
	for _, q := range s.qsched.Queues() {
		depth[q.Tenant] = q
	}
	out := make([]TenantMetrics, 0, len(s.tstats.stats))
	for wire, st := range s.tstats.stats {
		q := depth[qosName(wire)]
		out = append(out, TenantMetrics{
			ID:         st.spec.ID,
			Weight:     st.spec.Weight,
			Priority:   st.spec.Priority,
			RatePerSec: st.spec.RatePerSec,
			Burst:      st.spec.Burst,
			MaxTTLMs:   st.spec.MaxTTLMs,

			QueueDepth:    q.Depth,
			QueueCapacity: q.Capacity,

			Accepted:   st.accepted.Load(),
			Rejected:   st.rejected.Load(),
			Throttled:  st.throttled.Load(),
			QueueFull:  st.queueFull.Load(),
			Canceled:   st.canceled.Load(),
			Failed:     st.failed.Load(),
			TTLClamped: st.ttlClamped.Load(),

			AdmissionLatency: st.lat.snapshot(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// aggregateTenants merges per-shard tenant sections by tenant ID: counters
// and queue depths sum, latency histograms merge, class fields are shared
// (every shard was built from the same normalized config).
func aggregateTenants(shards []Metrics) []TenantMetrics {
	byID := make(map[string]*TenantMetrics)
	var order []string
	for _, m := range shards {
		for _, tm := range m.Tenants {
			agg, ok := byID[tm.ID]
			if !ok {
				cp := tm
				cp.AdmissionLatency = HistogramSnapshot{}
				cp.QueueDepth, cp.QueueCapacity = 0, 0
				cp.Accepted, cp.Rejected, cp.Throttled = 0, 0, 0
				cp.QueueFull, cp.Canceled, cp.Failed, cp.TTLClamped = 0, 0, 0, 0
				agg = &cp
				byID[tm.ID] = agg
				order = append(order, tm.ID)
			}
			agg.QueueDepth += tm.QueueDepth
			agg.QueueCapacity += tm.QueueCapacity
			agg.Accepted += tm.Accepted
			agg.Rejected += tm.Rejected
			agg.Throttled += tm.Throttled
			agg.QueueFull += tm.QueueFull
			agg.Canceled += tm.Canceled
			agg.Failed += tm.Failed
			agg.TTLClamped += tm.TTLClamped
			agg.AdmissionLatency = mergeHistograms(agg.AdmissionLatency, tm.AdmissionLatency)
		}
	}
	if len(order) == 0 {
		return nil
	}
	sort.Strings(order)
	out := make([]TenantMetrics, len(order))
	for i, id := range order {
		out[i] = *byID[id]
	}
	return out
}
