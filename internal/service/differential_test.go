package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/qos"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/topology"
)

// fakeClock is a manually advanced Clock. Set moves time forward and fires
// every timer whose deadline has been reached.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock(start time.Time) *fakeClock { return &fakeClock{now: start} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Set advances the clock (never backwards) and fires due timers.
func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
}

// seconds converts a workload-time float (arbitrary units, read as seconds)
// to a duration.
func seconds(x float64) time.Duration {
	return time.Duration(x * float64(time.Second))
}

// TestDifferentialAgainstSimulate replays the same random sched.Workload
// through the offline simulator and through the daemon (serialized: batch
// size 1, a fake clock stepped to each arrival, TTL = hold) and requires
// identical admission decisions and identical accepted rates. This pins the
// daemon's semantics to the paper's admission model: the serving layer is
// sched.Simulate made online.
//
// It runs once per scheduler: the serial scheduler directly, and the
// speculative scheduler forced on with one worker — a single worker leaves
// nothing able to move between a view snapshot and its validation, so the
// speculative pipeline must collapse to the exact serial decision sequence
// (DESIGN.md §8). The qos variants re-run both with the QoS queue layer on
// under its degenerate single-tenant config: one tenant's DWRR is pure
// FIFO, so the decision sequence must stay identical decision for decision
// (DESIGN.md §11).
func TestDifferentialAgainstSimulate(t *testing.T) {
	for _, mode := range []struct {
		name      string
		scheduler string
		workers   int
		qos       bool
	}{
		{name: "serial", scheduler: SchedulerSerial},
		{name: "speculative-workers-1", scheduler: SchedulerSpeculative, workers: 1},
		{name: "serial-qos", scheduler: SchedulerSerial, qos: true},
		{name: "speculative-workers-1-qos", scheduler: SchedulerSpeculative, workers: 1, qos: true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			differentialAgainstSimulate(t, mode.scheduler, mode.workers, mode.qos)
		})
	}
}

func differentialAgainstSimulate(t *testing.T, scheduler string, workers int, qosMode bool) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := topology.Default()
		cfg.Users = 8
		cfg.Switches = 16
		cfg.SwitchQubits = 2 // tight capacity so the trace mixes accepts and rejects
		g, err := topology.Generate(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: topology: %v", seed, err)
		}
		w := sched.Workload{Requests: 120, MeanInterarrival: 1, MeanHold: 6, MinUsers: 2, MaxUsers: 4}
		requests, err := w.Generate(g, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			t.Fatalf("seed %d: workload: %v", seed, err)
		}

		ref, err := sched.Simulate(g, requests, quantum.DefaultParams())
		if err != nil {
			t.Fatalf("seed %d: Simulate: %v", seed, err)
		}

		base := time.Unix(0, 0)
		fc := newFakeClock(base)
		cfgS := Config{
			Graph:     g,
			QueueSize: 4,
			MaxBatch:  1, // serialized replay: one decision per arrival instant
			MaxTTL:    1000 * time.Hour,
			Clock:     fc,
			Scheduler: scheduler,
			Workers:   workers,
		}
		if qosMode {
			cfgS.QoS = &qos.Config{} // normalizes to the lone default tenant
		}
		s, err := New(cfgS)
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}

		ordered := make([]sched.Request, len(requests))
		copy(ordered, requests)
		sort.SliceStable(ordered, func(i, j int) bool {
			if ordered[i].Arrival != ordered[j].Arrival {
				return ordered[i].Arrival < ordered[j].Arrival
			}
			return ordered[i].ID < ordered[j].ID
		})

		if len(ref.Outcomes) != len(ordered) {
			t.Fatalf("seed %d: reference has %d outcomes for %d requests", seed, len(ref.Outcomes), len(ordered))
		}
		accepted, rejected := 0, 0
		for i, req := range ordered {
			fc.Set(base.Add(seconds(req.Arrival)))
			info, err := s.Submit(context.Background(), req.Users, seconds(req.Hold))
			want := ref.Outcomes[i]
			if want.Request.ID != req.ID {
				t.Fatalf("seed %d: outcome order mismatch at %d: %d vs %d", seed, i, want.Request.ID, req.ID)
			}
			switch {
			case err == nil:
				accepted++
				if !want.Accepted {
					t.Fatalf("seed %d: request %d accepted by daemon, rejected by Simulate (%s)",
						seed, req.ID, want.Reason)
				}
				if math.Abs(info.Rate-want.Rate) > 1e-15*math.Max(1, math.Abs(want.Rate)) {
					t.Fatalf("seed %d: request %d rate %g vs Simulate %g", seed, req.ID, info.Rate, want.Rate)
				}
			case errors.Is(err, core.ErrInfeasible):
				rejected++
				if want.Accepted {
					t.Fatalf("seed %d: request %d rejected by daemon, accepted by Simulate", seed, req.ID)
				}
			default:
				t.Fatalf("seed %d: request %d unexpected error: %v", seed, req.ID, err)
			}
		}
		if accepted != ref.Accepted || rejected != ref.Rejected {
			t.Fatalf("seed %d: daemon %d/%d vs Simulate %d/%d", seed, accepted, rejected, ref.Accepted, ref.Rejected)
		}
		if accepted == 0 || rejected == 0 {
			t.Fatalf("seed %d: degenerate trace (%d accepts, %d rejects) — tighten the workload", seed, accepted, rejected)
		}

		m := s.Metrics()
		if m.Admission.Accepted != ref.Accepted || m.Admission.Rejected != ref.Rejected {
			t.Fatalf("seed %d: metrics summary %+v disagrees with reference %d/%d",
				seed, m.Admission, ref.Accepted, ref.Rejected)
		}
		if m.Admission.PeakQubitsInUse != ref.PeakQubitsInUse {
			t.Fatalf("seed %d: peak qubits %d vs Simulate %d", seed, m.Admission.PeakQubitsInUse, ref.PeakQubitsInUse)
		}
		_ = s.Close()
	}
}

// TestFakeClockExpiryWheel drives the wheel purely with the fake clock: a
// session expires only once time passes its TTL, and the release makes a
// previously infeasible request admissible.
func TestFakeClockExpiryWheel(t *testing.T) {
	base := time.Unix(0, 0)
	fc := newFakeClock(base)
	s := newTestServer(t, Config{MaxBatch: 1, MaxTTL: time.Hour, Clock: fc})

	if _, err := s.Submit(context.Background(), []graph.NodeID{0, 1}, 10*time.Second); err != nil {
		t.Fatalf("first session: %v", err)
	}
	if _, err := s.Submit(context.Background(), []graph.NodeID{2, 3}, 10*time.Second); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("contender error = %v, want infeasible", err)
	}

	// Advance past the TTL; the wheel (woken by the fake timer) releases
	// capacity without any further admissions.
	fc.Set(base.Add(11 * time.Second))
	deadline := time.Now().Add(5 * time.Second)
	for s.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("expiry wheel never released the session")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(context.Background(), []graph.NodeID{2, 3}, 10*time.Second); err != nil {
		t.Fatalf("post-expiry session: %v", err)
	}
}
