// Package service implements the online entanglement-routing daemon: the
// operational layer the ROADMAP's "serve heavy multi-user traffic" goal
// asks for, turning the paper's admission setting (sessions arrive, hold
// ⌊Q_r/2⌋-bounded switch capacity via the ledger, depart and free it) into
// a long-running service.
//
// Architecture (see DESIGN.md §6, §8):
//
//	HTTP/Submit → bounded queue → admission loop → scheduler → BuildGreedyTree
//	                                                  │ (one mutex)   │
//	                                                  └── live Ledger ←┘
//	                                                         ▲
//	                                          expiry wheel ──┘ (TTL / DELETE)
//
// Requests are enqueued onto a bounded channel (a full queue is immediate
// backpressure — ErrQueueFull / HTTP 429) and drained in micro-batches,
// each handed to the configured scheduler (scheduler.go): the serial
// scheduler solves every request under one lock acquisition so consecutive
// solves share a warm ledger-epoch stretch for the incremental search
// cache; the speculative scheduler (speculative.go, Config.Workers > 1)
// solves in parallel against consistent ledger views and validates-and-
// commits under the mutex via the closure epochs. Accepted sessions hold
// their tree's switch qubits until their TTL expires or they are deleted;
// a single expiry-wheel goroutine releases capacity exactly as
// sched.Simulate's expireSessions does, which is what makes the daemon's
// admission decisions match the offline simulator trace for trace (pinned
// by the differential test).
//
// Concurrency: the ledger, session table and expiry heap are guarded by
// one mutex shared by the admission loop and the expiry wheel (the
// contract documented on quantum.Ledger). Counters and the latency
// histogram are atomic and lock-free.
package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/qos"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
)

// Service errors. Submit wraps core.ErrInfeasible for capacity rejections;
// callers distinguish outcomes with errors.Is.
var (
	// ErrQueueFull reports backpressure: the admission queue is at capacity
	// and the request was not enqueued (HTTP 429).
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrClosed reports a request received during or after shutdown.
	ErrClosed = errors.New("service: server closed")
	// ErrInvalidRequest reports a request rejected before queueing (bad
	// user set or TTL).
	ErrInvalidRequest = errors.New("service: invalid request")
	// ErrNoSession reports an unknown session ID.
	ErrNoSession = errors.New("service: no such session")
)

// Config parameterizes a Server. Zero fields take the documented defaults.
type Config struct {
	// Graph is the topology to serve on (required, not modified).
	Graph *graph.Graph
	// Params are the physical-layer constants (zero value = DefaultParams).
	Params quantum.Params
	// QueueSize bounds the admission queue; a full queue rejects with
	// ErrQueueFull. Default 256.
	QueueSize int
	// MaxBatch caps how many requests one micro-batch admits under a single
	// lock acquisition. Default 16.
	MaxBatch int
	// MaxWait is how long the admission loop waits for a batch to fill
	// after its first request arrives; 0 drains only what is already
	// queued. Default 2ms.
	MaxWait time.Duration
	// Workers is the solve parallelism: how many goroutines the speculative
	// scheduler solves a micro-batch with. Default 1.
	Workers int
	// Scheduler names the admission scheduler (SchedulerSerial or
	// SchedulerSpeculative). Empty picks by Workers: 1 runs serial, more run
	// speculative. (Forcing SchedulerSpeculative with Workers=1 is how the
	// differential test pins the speculative path to serial decisions.)
	Scheduler string
	// SpecRetries bounds how many times a speculative solve is retried after
	// a validation conflict before the request is decided serially under the
	// mutex. Default 3.
	SpecRetries int
	// SolveCacheSize bounds the epoch-keyed solve cache (solvecache.go):
	// per sorted user set, the last solved outcome is replayed when the
	// ledger provably leads a fresh solve to the same answer. 0 means the
	// default of 256 entries; negative disables the cache. Each shard of a
	// ShardedServer carries its own cache of this size.
	SolveCacheSize int
	// DefaultTTL is the session lifetime when a request does not name one.
	// Default 30s.
	DefaultTTL time.Duration
	// MaxTTL caps requested lifetimes. Default 10m.
	MaxTTL time.Duration
	// RetryAfter is the backoff hint attached to queue-full rejections.
	// Default 1s.
	RetryAfter time.Duration
	// QoS enables the multi-tenant admission layer (qosplane.go, DESIGN.md
	// §11): the FIFO queue is replaced by per-tenant bounded sub-queues
	// drained deficit-weighted round-robin with strict-priority tiers, and
	// over-rate tenants are throttled by token bucket. Nil preserves the
	// anonymous FIFO behaviour. The config is validated and normalized by
	// New; a single default tenant with uniform weight is decision-for-
	// decision identical to FIFO (pinned by the differential test).
	QoS *qos.Config
	// Clock defaults to SystemClock; tests inject a fake.
	Clock Clock

	// DataDir enables the durability layer (DESIGN.md §7): admission
	// decisions are write-ahead logged under DataDir/wal and periodically
	// folded into snapshots under DataDir/snap, and New recovers the
	// pre-crash state from them. Empty means in-memory only.
	DataDir string
	// SnapshotEvery triggers a snapshot after this many WAL records.
	// Default 1024.
	SnapshotEvery int
	// SnapshotInterval triggers a snapshot after this much wall time even
	// when traffic is light. Default 30s.
	SnapshotInterval time.Duration
	// SnapshotKeep is how many snapshots Prune retains. Default 3.
	SnapshotKeep int
	// NoSync skips WAL fsyncs — only for benchmarks measuring the
	// non-durable baseline; a crash can then lose acknowledged records.
	NoSync bool

	// shard marks this Server as one shard of a ShardedServer (sharded.go):
	// session IDs take the "s<shard>-<n>" form, and the durability layer
	// writes the shard's own WAL stream and snapshot directory inside the
	// shared DataDir instead of pinning the environment itself (the sharded
	// layer pins the full topology, params and partition once).
	shard *shardEnv
	// qosLimiter, when set, is the token-bucket limiter this Server shares
	// with its siblings: a ShardedServer creates one limiter and hands it to
	// every shard so tenant quotas are global rather than multiplied by the
	// shard count. Nil (standalone) means New builds the Server's own.
	qosLimiter *qos.Limiter
}

// shardEnv carries a shard Server's identity within a ShardedServer.
type shardEnv struct {
	index int
}

func (c Config) withDefaults() Config {
	if c.Params == (quantum.Params{}) {
		c.Params = quantum.DefaultParams()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	} else if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 30 * time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.SpecRetries <= 0 {
		c.SpecRetries = 3
	}
	if c.SolveCacheSize == 0 {
		c.SolveCacheSize = 256
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 1024
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.SnapshotKeep <= 0 {
		c.SnapshotKeep = 3
	}
	return c
}

// SessionInfo is the public view of an admitted session.
type SessionInfo struct {
	ID string `json:"id"`
	// Users is the entangled user set.
	Users []graph.NodeID `json:"users"`
	// Tenant is the tenant the session was admitted under; empty is the
	// default tenant, and omitted in JSON so default-tenant sessions (and
	// their WAL records) serialize exactly as the pre-tenant schema did.
	Tenant string `json:"tenant,omitempty"`
	// Rate is the session tree's Eq. 2 entanglement rate.
	Rate float64 `json:"rate"`
	// Channels is the number of quantum channels in the routed tree.
	Channels   int       `json:"channels"`
	AdmittedAt time.Time `json:"admitted_at"`
	ExpiresAt  time.Time `json:"expires_at"`
}

// session is one admitted request holding ledger capacity. Sessions live in
// the expiry heap exactly as long as they live in the table: a release
// (expiry or DELETE) removes the heap entry eagerly via heapIdx, which
// keeps the heap's slice evolution a pure function of the admission/release
// sequence — the property WAL replay relies on to rebuild it byte for byte.
type session struct {
	info      SessionInfo
	tree      quantum.Tree
	expiresAt time.Time
	heapIdx   int

	// Cross-region sessions (sharded.go) hold per-switch load slices instead
	// of whole trees on each involved shard: load is this shard's slice,
	// shards the ascending list of involved shard indices (nil for ordinary
	// single-shard sessions), and secondary marks the copies living on every
	// involved shard other than the session's home.
	load      []quantum.LoadEntry
	shards    []int
	secondary bool
}

// expiryHeap is a min-heap of live sessions by expiry time — the timer
// wheel's agenda.
type expiryHeap []*session

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i].expiresAt.Before(h[j].expiresAt) }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *expiryHeap) Push(x interface{}) { s := x.(*session); s.heapIdx = len(*h); *h = append(*h, s) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// pending is one request travelling through the admission queue.
type pending struct {
	ctx    context.Context
	prob   *core.Problem
	users  []graph.NodeID
	ttl    time.Duration
	result chan admitResult // buffered(1): the loop never blocks responding

	// tenant is the wire tenant name ("" = default); enq and stat feed the
	// per-tenant admission-latency and outcome accounting (qosplane.go);
	// stat is nil without a QoS config. Deliver results via finish, never
	// the raw channel.
	tenant string
	enq    time.Time
	stat   *tenantStat
}

type admitResult struct {
	info SessionInfo
	err  error
}

// Server is the admission daemon: it owns a live quantum.Ledger over one
// topology and decides entanglement-session requests in micro-batches.
// Construct with New; a Server starts serving immediately and stops with
// Close.
type Server struct {
	cfg   Config
	clock Clock
	start time.Time
	total int // total switch qubits in the topology

	queue chan *pending
	quit  chan struct{}
	kick  chan struct{} // wakes the expiry wheel when the agenda changes
	wg    sync.WaitGroup

	// QoS plane (qosplane.go); all nil/unused without Config.QoS. In QoS
	// mode queue stays nil (a nil channel is never ready, so the existing
	// select sites fall through safely) and arrive signals the admission
	// loop instead.
	qcfg   *qos.Config    // normalized tenant registry
	qsched *qos.Scheduler // per-tenant queues + DWRR dequeue
	qlim   *qos.Limiter   // token-bucket quotas (shared across shards)
	arrive chan struct{}  // sticky enqueue signal, capacity 1
	tstats *tenantTable   // per-tenant SLO accounting

	closing   atomic.Bool
	closeOnce sync.Once

	// mu guards the ledger, session table, expiry heap and the aggregates
	// below; it is the single mutation lock of the Ledger contract.
	mu       sync.Mutex
	led      *quantum.Ledger
	sessions map[string]*session
	expiry   expiryHeap
	work     core.SolveStats // aggregated across every solve
	sumRate  float64         // sum of accepted session rates
	peak     int             // high-water mark of reserved qubits

	nextID   atomic.Uint64
	idPrefix string // "s-" standalone, "s<shard>-" inside a ShardedServer
	ctrs     counters
	lat      *histogram

	// cache replays repeat solves when the ledger provably allows it
	// (solvecache.go); nil when disabled. Guarded by mu like the ledger.
	cache *solveCache
	// fpPool recycles the flat load footprints the hot path fills per
	// admission (quantum.Footprint); shared by the speculative validate and
	// the sharded split/validate steps.
	fpPool *quantum.FootprintPool

	// sched decides micro-batches (scheduler.go); chosen once at New.
	sched scheduler

	// dur is the durability runtime (WAL + snapshots); nil without DataDir.
	dur *durability
}

// New validates the configuration and starts the admission and expiry
// goroutines. The caller must Close the returned server.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil {
		return nil, errors.New("service: nil graph")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Graph.Users()) < 2 {
		return nil, errors.New("service: topology has fewer than 2 users")
	}
	s := &Server{
		cfg:      cfg,
		clock:    cfg.Clock,
		start:    cfg.Clock.Now(),
		led:      quantum.NewLedger(cfg.Graph),
		sessions: make(map[string]*session),
		quit:     make(chan struct{}),
		kick:     make(chan struct{}, 1),
		lat:      newHistogram(),
		idPrefix: "s-",
		fpPool:   quantum.NewFootprintPool(cfg.Graph.NumNodes()),
	}
	if cfg.QoS != nil {
		// QoS mode: per-tenant sub-queues replace the FIFO channel (which
		// stays nil — a nil channel is never ready in a select, so the FIFO
		// paths fall through without branching).
		if err := cfg.QoS.Validate(); err != nil {
			return nil, err
		}
		s.qcfg = cfg.QoS.Normalized()
		s.qsched = qos.NewScheduler(s.qcfg, cfg.QueueSize)
		s.qlim = cfg.qosLimiter
		if s.qlim == nil {
			s.qlim = qos.NewLimiter(s.qcfg)
		}
		s.arrive = make(chan struct{}, 1)
		s.tstats = newTenantTable(s.qcfg)
	} else {
		s.queue = make(chan *pending, cfg.QueueSize)
	}
	if cfg.SolveCacheSize > 0 {
		s.cache = newSolveCache(cfg.SolveCacheSize, cfg.Graph.NumNodes())
	}
	if cfg.shard != nil {
		s.idPrefix = fmt.Sprintf("s%d-", cfg.shard.index)
	}
	for _, id := range cfg.Graph.Switches() {
		s.total += cfg.Graph.Node(id).Qubits
	}
	var err error
	if s.sched, err = newScheduler(s, cfg); err != nil {
		return nil, err
	}
	if cfg.DataDir != "" {
		// Recover the pre-crash state and open the WAL before any goroutine
		// can mutate or observe it.
		if err := s.openDurability(cfg); err != nil {
			return nil, err
		}
	}
	s.wg.Add(2)
	go s.admissionLoop()
	go s.expiryLoop()
	if s.dur != nil {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// Graph returns the topology the server routes on.
func (s *Server) Graph() *graph.Graph { return s.cfg.Graph }

// Submit enqueues one session request and blocks until the admission loop
// decides or ctx ends; it is the programmatic face of POST /sessions.
// ttl <= 0 means the server default; TTLs are capped at Config.MaxTTL and,
// with a QoS config, at the tenant's own max_ttl_ms (clamped requests are
// counted in the tenant's ttl_clamped metric).
// Outcomes: nil error = admitted (capacity held until expiry or Delete);
// core.ErrInfeasible = rejected under residual capacity; ErrQueueFull =
// backpressure, retry later; ErrInvalidRequest = malformed user set;
// ErrClosed = shutting down; a context error if ctx ended first (a request
// cancelled mid-queue may still be decided — an accept then simply expires
// at its TTL).
func (s *Server) Submit(ctx context.Context, users []graph.NodeID, ttl time.Duration) (SessionInfo, error) {
	return s.SubmitTenant(ctx, "", users, ttl)
}

// SubmitTenant is Submit with an explicit tenant name (the POST /sessions
// "tenant" field). The empty name is the default tenant; with a QoS config
// (Config.QoS) the request joins its tenant's sub-queue after passing the
// tenant's token-bucket quota — an over-rate tenant gets a *qos.
// ThrottleError (errors.Is qos.ErrThrottled, HTTP 429 + Retry-After), and a
// full tenant sub-queue gets ErrQueueFull without touching other tenants'
// capacity. Unknown tenant names are served under the default class.
func (s *Server) SubmitTenant(ctx context.Context, tenant string, users []graph.NodeID, ttl time.Duration) (SessionInfo, error) {
	s.ctrs.requests.Add(1)
	if s.closing.Load() {
		return SessionInfo{}, ErrClosed
	}
	if len(users) < 2 {
		s.ctrs.invalid.Add(1)
		return SessionInfo{}, fmt.Errorf("%w: session needs at least 2 users, got %d", ErrInvalidRequest, len(users))
	}
	// Problems are built (and validated) outside the admission loop so the
	// serial section only runs the solver.
	prob, err := core.NewProblem(s.cfg.Graph, users, s.cfg.Params)
	if err != nil {
		s.ctrs.invalid.Add(1)
		return SessionInfo{}, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	if ttl <= 0 {
		ttl = s.cfg.DefaultTTL
	}
	if ttl > s.cfg.MaxTTL {
		ttl = s.cfg.MaxTTL
	}
	tenant = s.wireTenant(tenant)
	stat := s.tstats.get(tenant)
	ttl = stat.clampTTL(ttl)
	p := &pending{
		ctx: ctx, prob: prob, users: prob.Users, ttl: ttl,
		result: make(chan admitResult, 1),
		tenant: tenant, enq: time.Now(), stat: stat,
	}
	if s.qsched != nil {
		// Quota first: a throttled request must not consume queue space.
		if err := s.qlim.Allow(qosName(tenant), s.clock.Now()); err != nil {
			s.ctrs.throttled.Add(1)
			if stat != nil {
				stat.throttled.Add(1)
			}
			return SessionInfo{}, err
		}
		if err := s.qsched.Enqueue(qosName(tenant), p); err != nil {
			s.ctrs.queueFull.Add(1)
			if stat != nil {
				stat.queueFull.Add(1)
			}
			return SessionInfo{}, ErrQueueFull
		}
		s.wakeAdmission()
	} else {
		select {
		case s.queue <- p:
		default:
			s.ctrs.queueFull.Add(1)
			return SessionInfo{}, ErrQueueFull
		}
	}
	select {
	case r := <-p.result:
		return r.info, r.err
	case <-ctx.Done():
		return SessionInfo{}, ctx.Err()
	}
}

// Session returns the live session with the given ID.
func (s *Server) Session(id string) (SessionInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return SessionInfo{}, false
	}
	return sess.info, true
}

// Delete releases a session's ledger capacity before its TTL (DELETE
// /sessions/{id}). It returns ErrNoSession for unknown or already-ended
// sessions.
func (s *Server) Delete(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	s.releaseLocked(sess, releasedDeleted, s.clock.Now())
	s.ctrs.deleted.Add(1)
	ticket := s.enqueueRecordsLocked()
	s.mu.Unlock()
	// Write-ahead contract: the release is on disk before the 204.
	return s.waitDurable(ticket)
}

// ActiveSessions returns the number of sessions currently holding capacity.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// sessionCounts returns the live session count and, of those, how many are
// secondary copies of cross-region sessions homed on another shard.
func (s *Server) sessionCounts() (active, secondary int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		if sess.secondary {
			secondary++
		}
	}
	return len(s.sessions), secondary
}

// sessionShards returns a cross-region session's involved-shard list (nil
// for ordinary sessions); ShardedServer.Delete fans releases out over it.
func (s *Server) sessionShards(id string) ([]int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, false
	}
	return sess.shards, true
}

// deleteQuiet releases a session like Delete but without the deleted
// counter, and treats an already-gone session as success — the shape a
// cross-region fan-out needs on secondary shards, whose copies the home
// shard's delete does not own and whose expiry wheel may race the fan-out.
func (s *Server) deleteQuiet(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	s.releaseLocked(sess, releasedDeleted, s.clock.Now())
	ticket := s.enqueueRecordsLocked()
	s.mu.Unlock()
	return s.waitDurable(ticket)
}

// Close stops accepting new requests, drains everything already queued
// (each still gets a real admission decision — SIGTERM does not drop
// accepted work), stops the admission and expiry goroutines and returns.
// Close is idempotent and safe to call concurrently.
func (s *Server) Close() error {
	var closeErr error
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		close(s.quit)
		s.wg.Wait()
		// A racing Submit may have slipped into the queue after the drain
		// finished; bounce those rather than leaving callers waiting. (In QoS
		// mode queue is nil — never ready — so the select falls straight to
		// the default branch, where the QoS scheduler's leftovers bounce.)
		for {
			select {
			case p := <-s.queue:
				p.finish(admitResult{err: ErrClosed})
			default:
				if s.qsched != nil {
					for {
						item, _, ok := s.qsched.Dequeue()
						if !ok {
							break
						}
						item.(*pending).finish(admitResult{err: ErrClosed})
					}
				}
				// Final snapshot + WAL close: a clean restart replays nothing.
				closeErr = s.closeDurability()
				return
			}
		}
	})
	return closeErr
}

// admissionLoop is the single consumer of the queue: it drains requests in
// micro-batches and decides them against the shared ledger. With a QoS
// config the body is the QoS dequeue loop (qosplane.go) over the same
// scheduler seam.
func (s *Server) admissionLoop() {
	defer s.wg.Done()
	if s.qsched != nil {
		s.qosAdmissionLoop()
		return
	}
	for {
		select {
		case <-s.quit:
			s.drain()
			return
		case p := <-s.queue:
			s.sched.decide(s.fillBatch(p))
		}
	}
}

// fillBatch grows a batch around its first request: it keeps pulling from
// the queue until the batch is full, MaxWait elapses, or shutdown starts.
func (s *Server) fillBatch(first *pending) []*pending {
	batch := append(make([]*pending, 0, s.cfg.MaxBatch), first)
	if len(batch) >= s.cfg.MaxBatch {
		return batch
	}
	var timeout <-chan time.Time
	if s.cfg.MaxWait > 0 {
		timeout = s.clock.After(s.cfg.MaxWait)
	}
	for len(batch) < s.cfg.MaxBatch {
		if timeout == nil {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
			default:
				return batch
			}
			continue
		}
		select {
		case p := <-s.queue:
			batch = append(batch, p)
		case <-timeout:
			return batch
		case <-s.quit:
			return batch
		}
	}
	return batch
}

// drain decides everything still queued at shutdown, one final batch at a
// time, without waiting for more arrivals.
func (s *Server) drain() {
	for {
		select {
		case p := <-s.queue:
			batch := append(make([]*pending, 0, s.cfg.MaxBatch), p)
			for len(batch) < s.cfg.MaxBatch {
				select {
				case q := <-s.queue:
					batch = append(batch, q)
				default:
					goto decide
				}
			}
		decide:
			s.sched.decide(batch)
		default:
			return
		}
	}
}

// expireLocked releases every session whose expiry is at or before now —
// the same departAt <= now rule as sched.Simulate's expireSessions.
func (s *Server) expireLocked(now time.Time) {
	for len(s.expiry) > 0 {
		next := s.expiry[0]
		if next.expiresAt.After(now) {
			return
		}
		s.releaseLocked(next, releasedExpired, now)
		// A cross-region session expires on every involved shard; only its
		// home shard counts it, so aggregated counters stay session-accurate.
		if !next.secondary {
			s.ctrs.expired.Add(1)
		}
	}
}

// Release reasons recorded in the WAL.
const (
	releasedExpired = "expired"
	releasedDeleted = "deleted"
)

// releaseLocked refunds a session's reservations — the whole tree for
// ordinary sessions, this shard's load slice for cross-region ones — drops
// it from the table, removes its expiry-heap entry eagerly, and stages the
// WAL record.
func (s *Server) releaseLocked(sess *session, reason string, now time.Time) {
	heap.Remove(&s.expiry, sess.heapIdx)
	if sess.shards != nil {
		s.led.ReleaseLoad(sess.load)
	} else {
		core.ReleaseTree(s.led, sess.tree)
	}
	delete(s.sessions, sess.info.ID)
	s.appendRecordLocked(walRecord{T: recRelease, Release: &releaseRecord{
		ID:     sess.info.ID,
		Tenant: sess.info.Tenant,
		Reason: reason,
		At:     now,
	}})
}

// expiryLoop is the timer wheel: one goroutine that sleeps until the
// earliest expiry and releases capacity, re-arming after every admission
// (wakeExpiry) so a newly accepted short session is never missed.
func (s *Server) expiryLoop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		now := s.clock.Now()
		s.expireLocked(now)
		var timer <-chan time.Time
		if len(s.expiry) > 0 {
			timer = s.clock.After(s.expiry[0].expiresAt.Sub(now))
		}
		ticket := s.enqueueRecordsLocked()
		s.mu.Unlock()
		_ = s.waitDurable(ticket)
		select {
		case <-s.quit:
			return
		case <-s.kick:
		case <-timer:
		}
	}
}

func (s *Server) wakeExpiry() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Metrics snapshots the daemon's counters, live queue and ledger state, and
// the shared sched.Summary admission view.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	work := s.work
	active := len(s.sessions)
	used := s.led.UsedQubits()
	gen := s.led.Epoch().Gen
	sumRate := s.sumRate
	peak := s.peak
	cacheM := s.solveCacheMetricsLocked()
	s.mu.Unlock()

	acc := s.ctrs.accepted.Load()
	rej := s.ctrs.rejected.Load()
	adm := sched.Summary{
		Sessions:        int(acc + rej),
		Accepted:        int(acc),
		Rejected:        int(rej),
		PeakQubitsInUse: peak,
		Work:            work,
	}
	if acc+rej > 0 {
		adm.AcceptanceRatio = float64(acc) / float64(acc+rej)
	}
	if acc > 0 {
		adm.MeanAcceptedRate = sumRate / float64(acc)
	}
	batches := s.ctrs.batches.Load()
	bm := BatchMetrics{
		Count:    batches,
		Requests: s.ctrs.batchedRequests.Load(),
		MaxSize:  s.ctrs.maxBatch.Load(),
	}
	if batches > 0 {
		bm.MeanSize = float64(bm.Requests) / float64(batches)
	}
	qm := QueueMetrics{Depth: len(s.queue), Capacity: cap(s.queue)}
	if s.qsched != nil {
		qm = QueueMetrics{Depth: s.qsched.Len()}
		for _, q := range s.qsched.Queues() {
			qm.Capacity += q.Capacity
		}
	}
	return Metrics{
		UptimeMs: float64(s.clock.Now().Sub(s.start)) / 1e6,
		Queue:    qm,
		Requests: RequestMetrics{
			Total:     s.ctrs.requests.Load(),
			Accepted:  acc,
			Rejected:  rej,
			QueueFull: s.ctrs.queueFull.Load(),
			Throttled: s.ctrs.throttled.Load(),
			Invalid:   s.ctrs.invalid.Load(),
			Canceled:  s.ctrs.canceled.Load(),
			Failed:    s.ctrs.failed.Load(),
		},
		Batches:      bm,
		SolveLatency: s.lat.snapshot(),
		Sessions: SessionMetrics{
			Active:  active,
			Expired: s.ctrs.expired.Load(),
			Deleted: s.ctrs.deleted.Load(),
		},
		Ledger: LedgerMetrics{
			UsedQubits:  used,
			FreeQubits:  s.total - used,
			TotalQubits: s.total,
			EpochGen:    gen,
		},
		Admission:     adm,
		Durability:    s.durabilityMetrics(),
		Speculation:   s.sched.speculation(),
		SolveCache:    cacheM,
		FootprintPool: s.footprintPoolMetrics(),
		Tenants:       s.tenantMetrics(),
	}
}
