// Package workload generates seeded session-arrival processes for the
// slotted simulator (internal/timesim) and the live load driver
// (cmd/qload). Three traffic models are provided: a homogeneous Poisson
// process, a diurnal (sinusoidally modulated) process, and a flash-crowd
// process (a rectangular burst on top of a base rate). All three are
// non-homogeneous Poisson processes sampled by Lewis–Shedler thinning, so
// a fixed *rand.Rand seed yields a bit-identical arrival stream.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/sched"
)

// Errors.
var (
	ErrBadProcess = errors.New("workload: invalid arrival process")
	ErrBadDraw    = errors.New("workload: invalid session draw")
	ErrNilRNG     = errors.New("workload: nil rng")
)

// Process is an arrival-rate profile λ(t) over continuous time. Time units
// are whatever the caller uses (slots in timesim, abstract units in qload).
type Process interface {
	// Name identifies the process ("poisson", "diurnal", "flash").
	Name() string
	// Rate returns the instantaneous arrival rate λ(t) >= 0.
	Rate(t float64) float64
	// MaxRate returns an upper bound on Rate over all t, used as the
	// thinning envelope. It must be positive and finite.
	MaxRate() float64
	// Validate rejects meaningless parameters.
	Validate() error
}

// Poisson is a homogeneous Poisson process with rate Lambda.
type Poisson struct {
	// Lambda is the arrival rate (sessions per time unit).
	Lambda float64
}

func (p Poisson) Name() string         { return "poisson" }
func (p Poisson) Rate(float64) float64 { return p.Lambda }
func (p Poisson) MaxRate() float64     { return p.Lambda }

// Validate checks Lambda > 0 and finite.
func (p Poisson) Validate() error {
	if !(p.Lambda > 0) || math.IsInf(p.Lambda, 1) {
		return fmt.Errorf("%w: poisson rate %g must be positive and finite", ErrBadProcess, p.Lambda)
	}
	return nil
}

// Diurnal is a sinusoidally modulated Poisson process,
// λ(t) = Mean * (1 + Amplitude*sin(2π(t/Period + Phase))) — the classic
// day/night load curve.
type Diurnal struct {
	// Mean is the time-averaged arrival rate.
	Mean float64
	// Amplitude in [0, 1] scales the swing: 1 means the trough hits zero.
	Amplitude float64
	// Period is the cycle length in time units.
	Period float64
	// Phase in [0, 1) shifts the cycle start.
	Phase float64
}

func (d Diurnal) Name() string { return "diurnal" }

func (d Diurnal) Rate(t float64) float64 {
	return d.Mean * (1 + d.Amplitude*math.Sin(2*math.Pi*(t/d.Period+d.Phase)))
}

func (d Diurnal) MaxRate() float64 { return d.Mean * (1 + d.Amplitude) }

// Validate checks Mean > 0, Amplitude in [0,1] and Period > 0.
func (d Diurnal) Validate() error {
	if !(d.Mean > 0) || math.IsInf(d.Mean, 1) {
		return fmt.Errorf("%w: diurnal mean %g must be positive and finite", ErrBadProcess, d.Mean)
	}
	if d.Amplitude < 0 || d.Amplitude > 1 || math.IsNaN(d.Amplitude) {
		return fmt.Errorf("%w: diurnal amplitude %g must be in [0, 1]", ErrBadProcess, d.Amplitude)
	}
	if !(d.Period > 0) || math.IsInf(d.Period, 1) {
		return fmt.Errorf("%w: diurnal period %g must be positive and finite", ErrBadProcess, d.Period)
	}
	if math.IsNaN(d.Phase) || math.IsInf(d.Phase, 0) {
		return fmt.Errorf("%w: diurnal phase %g must be finite", ErrBadProcess, d.Phase)
	}
	return nil
}

// Flash is a flash-crowd process: base rate Base everywhere, multiplied by
// Mult inside the burst window [At, At+Width).
type Flash struct {
	// Base is the background arrival rate.
	Base float64
	// Mult >= 1 is the rate multiplier during the burst.
	Mult float64
	// At is the burst start time.
	At float64
	// Width is the burst duration.
	Width float64
}

func (f Flash) Name() string { return "flash" }

func (f Flash) Rate(t float64) float64 {
	if t >= f.At && t < f.At+f.Width {
		return f.Base * f.Mult
	}
	return f.Base
}

func (f Flash) MaxRate() float64 { return f.Base * f.Mult }

// Validate checks Base > 0, Mult >= 1 and Width > 0.
func (f Flash) Validate() error {
	if !(f.Base > 0) || math.IsInf(f.Base, 1) {
		return fmt.Errorf("%w: flash base rate %g must be positive and finite", ErrBadProcess, f.Base)
	}
	if !(f.Mult >= 1) || math.IsInf(f.Mult, 1) {
		return fmt.Errorf("%w: flash multiplier %g must be >= 1 and finite", ErrBadProcess, f.Mult)
	}
	if !(f.At >= 0) || math.IsInf(f.At, 1) {
		return fmt.Errorf("%w: flash burst start %g must be non-negative and finite", ErrBadProcess, f.At)
	}
	if !(f.Width > 0) || math.IsInf(f.Width, 1) {
		return fmt.Errorf("%w: flash burst width %g must be positive and finite", ErrBadProcess, f.Width)
	}
	return nil
}

// ParseProcess builds the named process around a mean base rate and a time
// horizon, with conventional shapes: "poisson" is homogeneous at mean;
// "diurnal" swings ±80% over two cycles across the horizon; "flash" is an
// 8× burst of one-twentieth of the horizon starting at 40% through it.
func ParseProcess(name string, mean, horizon float64) (Process, error) {
	if !(mean > 0) || math.IsInf(mean, 1) {
		return nil, fmt.Errorf("%w: mean rate %g must be positive and finite", ErrBadProcess, mean)
	}
	if !(horizon > 0) || math.IsInf(horizon, 1) {
		return nil, fmt.Errorf("%w: horizon %g must be positive and finite", ErrBadProcess, horizon)
	}
	var p Process
	switch name {
	case "poisson":
		p = Poisson{Lambda: mean}
	case "diurnal":
		p = Diurnal{Mean: mean, Amplitude: 0.8, Period: horizon / 2}
	case "flash":
		p = Flash{Base: mean, Mult: 8, At: 0.4 * horizon, Width: horizon / 20}
	default:
		return nil, fmt.Errorf("%w: unknown process %q (want poisson, diurnal or flash)", ErrBadProcess, name)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Arrivals samples the process over [0, horizon) by Lewis–Shedler thinning:
// candidate gaps are exponential at the envelope rate MaxRate, and a
// candidate at time t survives with probability Rate(t)/MaxRate. The result
// is sorted and deterministic for a given rng state.
func Arrivals(p Process, horizon float64, rng *rand.Rand) ([]float64, error) {
	if err := validateSampling(p, rng); err != nil {
		return nil, err
	}
	if !(horizon > 0) || math.IsInf(horizon, 1) {
		return nil, fmt.Errorf("%w: horizon %g must be positive and finite", ErrBadProcess, horizon)
	}
	env := p.MaxRate()
	var out []float64
	for t := rng.ExpFloat64() / env; t < horizon; t += rng.ExpFloat64() / env {
		if rng.Float64()*env <= p.Rate(t) {
			out = append(out, t)
		}
	}
	return out, nil
}

// ArrivalsN samples exactly n arrivals by thinning, running past any fixed
// horizon until the count is met. Used when the caller wants a session
// budget (qload -sessions) rather than a time budget.
func ArrivalsN(p Process, n int, rng *rand.Rand) ([]float64, error) {
	if err := validateSampling(p, rng); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: negative arrival count %d", ErrBadProcess, n)
	}
	env := p.MaxRate()
	out := make([]float64, 0, n)
	for t := 0.0; len(out) < n; {
		t += rng.ExpFloat64() / env
		if rng.Float64()*env <= p.Rate(t) {
			out = append(out, t)
		}
	}
	return out, nil
}

func validateSampling(p Process, rng *rand.Rand) error {
	if p == nil {
		return fmt.Errorf("%w: nil process", ErrBadProcess)
	}
	if rng == nil {
		return ErrNilRNG
	}
	if err := p.Validate(); err != nil {
		return err
	}
	return nil
}

// Draw describes how sessions are fleshed out around an arrival stream:
// exponential holds and uniformly sized user groups drawn without
// replacement, mirroring sched.Workload.
type Draw struct {
	// MeanHold is the mean session hold time (exponential).
	MeanHold float64
	// MinUsers and MaxUsers bound the uniformly drawn group size.
	MinUsers, MaxUsers int
}

// Sessions turns an arrival stream into sched.Requests on g's users: IDs
// are sequential in arrival order, holds are exponential at MeanHold, and
// each group is a without-replacement draw of a uniform size in
// [MinUsers, MaxUsers].
func (d Draw) Sessions(g *graph.Graph, arrivals []float64, rng *rand.Rand) ([]sched.Request, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadDraw)
	}
	if rng == nil {
		return nil, ErrNilRNG
	}
	users := g.Users()
	if d.MinUsers < 2 || d.MaxUsers < d.MinUsers {
		return nil, fmt.Errorf("%w: user range [%d, %d]", ErrBadDraw, d.MinUsers, d.MaxUsers)
	}
	if d.MaxUsers > len(users) {
		return nil, fmt.Errorf("%w: sessions of up to %d users on a %d-user network",
			ErrBadDraw, d.MaxUsers, len(users))
	}
	if !(d.MeanHold > 0) || math.IsInf(d.MeanHold, 1) {
		return nil, fmt.Errorf("%w: mean hold %g must be positive and finite", ErrBadDraw, d.MeanHold)
	}
	if !sort.Float64sAreSorted(arrivals) {
		return nil, fmt.Errorf("%w: arrivals must be sorted", ErrBadDraw)
	}
	out := make([]sched.Request, 0, len(arrivals))
	for i, at := range arrivals {
		size := d.MinUsers + rng.Intn(d.MaxUsers-d.MinUsers+1)
		perm := rng.Perm(len(users))
		members := make([]graph.NodeID, size)
		for j := 0; j < size; j++ {
			members[j] = users[perm[j]]
		}
		out = append(out, sched.Request{
			ID:      i,
			Users:   members,
			Arrival: at,
			Hold:    rng.ExpFloat64() * d.MeanHold,
		})
	}
	return out, nil
}
