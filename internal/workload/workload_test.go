package workload

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/topology"
)

// Golden traces: the exact first arrivals of each generator under seed 11
// are pinned so any change to the thinning sampler or the rate profiles is
// a visible, deliberate diff.
func TestGoldenArrivalTraces(t *testing.T) {
	cases := []struct {
		proc  Process
		count int
		first string
	}{
		{Poisson{Lambda: 0.5}, 99, "0.142186102 2.440000866 6.450558031"},
		{Diurnal{Mean: 0.5, Amplitude: 0.8, Period: 100}, 114, "1.355556037 3.583643350 5.209111785"},
		{Flash{Base: 0.5, Mult: 8, At: 40, Width: 10}, 127, "0.806319754 2.040830877 5.558317237"},
	}
	for _, tc := range cases {
		arr, err := Arrivals(tc.proc, 200, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("%s: %v", tc.proc.Name(), err)
		}
		got := fmt.Sprintf("n=%d", len(arr))
		for i := 0; i < 3 && i < len(arr); i++ {
			got += fmt.Sprintf(" %.9f", arr[i])
		}
		want := fmt.Sprintf("n=%d %s", tc.count, tc.first)
		if got != want {
			t.Errorf("%s golden trace drifted:\n got  %s\n want %s", tc.proc.Name(), got, want)
		}
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	for _, p := range []Process{
		Poisson{Lambda: 2},
		Diurnal{Mean: 2, Amplitude: 0.5, Period: 50, Phase: 0.25},
		Flash{Base: 1, Mult: 4, At: 20, Width: 5},
	} {
		a, err := Arrivals(p, 300, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		b, err := Arrivals(p, 300, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", p.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs: %g vs %g", p.Name(), i, a[i], b[i])
			}
		}
		c, err := Arrivals(p, 300, rand.New(rand.NewSource(43)))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(c) == len(a) && fmt.Sprint(c) == fmt.Sprint(a) {
			t.Errorf("%s: different seeds produced identical streams", p.Name())
		}
	}
}

// The homogeneous sampler's count must match λ*horizon within a few
// standard deviations.
func TestPoissonMeanRate(t *testing.T) {
	arr, err := Arrivals(Poisson{Lambda: 2}, 5000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	mean := 2.0 * 5000
	if dev := math.Abs(float64(len(arr)) - mean); dev > 5*math.Sqrt(mean) {
		t.Fatalf("count %d, want ~%g", len(arr), mean)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
}

// Diurnal load concentrates in the peak half-cycle; flash load concentrates
// in the burst window.
func TestShapedProcessesConcentrateLoad(t *testing.T) {
	d := Diurnal{Mean: 1, Amplitude: 0.9, Period: 1000}
	arr, err := Arrivals(d, 1000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	peak := 0 // sin > 0 on the first half-period
	for _, t := range arr {
		if t < 500 {
			peak++
		}
	}
	if trough := len(arr) - peak; peak < 2*trough {
		t.Errorf("diurnal peak half has %d arrivals vs trough %d; want strong skew", peak, trough)
	}

	f := Flash{Base: 1, Mult: 10, At: 400, Width: 100}
	arr, err = Arrivals(f, 1000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	burst := 0
	for _, t := range arr {
		if t >= 400 && t < 500 {
			burst++
		}
	}
	// The burst window is 10% of the horizon but carries 10x the rate:
	// roughly half the arrivals must land inside it.
	if burst < len(arr)/3 {
		t.Errorf("flash burst window has %d of %d arrivals; want the majority share", burst, len(arr))
	}
}

func TestArrivalsN(t *testing.T) {
	arr, err := ArrivalsN(Flash{Base: 0.5, Mult: 8, At: 10, Width: 4}, 250, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 250 {
		t.Fatalf("got %d arrivals, want 250", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	if _, err := ArrivalsN(Poisson{Lambda: 1}, -1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative count accepted")
	}
}

func TestParseProcess(t *testing.T) {
	for _, name := range []string{"poisson", "diurnal", "flash"} {
		p, err := ParseProcess(name, 1.5, 400)
		if err != nil {
			t.Fatalf("ParseProcess(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParseProcess(%q).Name() = %q", name, p.Name())
		}
		if p.MaxRate() < 1.5 {
			t.Errorf("%s: envelope %g below mean", name, p.MaxRate())
		}
	}
	for _, bad := range []struct {
		name          string
		mean, horizon float64
	}{
		{"uniform", 1, 100}, {"poisson", 0, 100}, {"poisson", 1, 0}, {"flash", -2, 100},
	} {
		if _, err := ParseProcess(bad.name, bad.mean, bad.horizon); err == nil {
			t.Errorf("ParseProcess(%q, %g, %g) succeeded", bad.name, bad.mean, bad.horizon)
		}
	}
}

func TestProcessValidate(t *testing.T) {
	bad := []Process{
		Poisson{Lambda: 0},
		Poisson{Lambda: math.Inf(1)},
		Diurnal{Mean: 1, Amplitude: 1.5, Period: 10},
		Diurnal{Mean: 1, Amplitude: 0.5, Period: 0},
		Diurnal{Mean: 1, Amplitude: 0.5, Period: 10, Phase: math.NaN()},
		Flash{Base: 1, Mult: 0.5, At: 0, Width: 1},
		Flash{Base: 1, Mult: 2, At: -1, Width: 1},
		Flash{Base: 1, Mult: 2, At: 0, Width: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%#v validated", p)
		}
		if _, err := Arrivals(p, 10, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("Arrivals accepted %#v", p)
		}
	}
	if _, err := Arrivals(Poisson{Lambda: 1}, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Arrivals(nil, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil process accepted")
	}
}

func TestDrawSessions(t *testing.T) {
	g, err := topology.Generate(topology.Default(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	arr, err := Arrivals(Poisson{Lambda: 1}, 100, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	d := Draw{MeanHold: 12, MinUsers: 2, MaxUsers: 4}
	reqs, err := d.Sessions(g, arr, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != len(arr) {
		t.Fatalf("got %d requests for %d arrivals", len(reqs), len(arr))
	}
	users := map[int64]bool{}
	for _, u := range g.Users() {
		users[int64(u)] = true
	}
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.Arrival != arr[i] {
			t.Fatalf("request %d arrival %g != %g", i, r.Arrival, arr[i])
		}
		if len(r.Users) < 2 || len(r.Users) > 4 {
			t.Fatalf("request %d has %d users", i, len(r.Users))
		}
		seen := map[int64]bool{}
		for _, u := range r.Users {
			if !users[int64(u)] {
				t.Fatalf("request %d includes non-user node %d", i, u)
			}
			if seen[int64(u)] {
				t.Fatalf("request %d repeats user %d", i, u)
			}
			seen[int64(u)] = true
		}
		if r.Hold <= 0 {
			t.Fatalf("request %d has hold %g", i, r.Hold)
		}
	}
	again, err := d.Sessions(g, arr, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(again) != fmt.Sprint(reqs) {
		t.Fatal("Draw.Sessions is not deterministic")
	}

	for _, bad := range []Draw{
		{MeanHold: 0, MinUsers: 2, MaxUsers: 3},
		{MeanHold: 1, MinUsers: 1, MaxUsers: 3},
		{MeanHold: 1, MinUsers: 3, MaxUsers: 2},
		{MeanHold: 1, MinUsers: 2, MaxUsers: 10000},
	} {
		if _, err := bad.Sessions(g, arr, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("draw %+v accepted", bad)
		}
	}
	if _, err := d.Sessions(nil, arr, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := d.Sessions(g, arr, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := d.Sessions(g, []float64{3, 1, 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unsorted arrivals accepted")
	}
}
