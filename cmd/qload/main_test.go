package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/qos"
	"github.com/muerp/quantumnet/internal/service"
)

func testDaemon(t *testing.T) string {
	t.Helper()
	g := graph.New(6, 8)
	for i := 0; i < 4; i++ {
		g.AddUser(float64(i)*1000, 0)
	}
	g.AddSwitch(1500, 1000, 8)
	g.AddSwitch(1500, 2000, 8)
	for u := graph.NodeID(0); u < 4; u++ {
		g.MustAddEdge(u, 4, 1200)
		g.MustAddEdge(u, 5, 1400)
	}
	s, err := service.New(service.Config{Graph: g})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// testShardedDaemon boots a two-shard daemon over a dumbbell: two 2-switch
// clusters joined by one fiber, four users on each side.
func testShardedDaemon(t *testing.T) string {
	t.Helper()
	g := graph.New(0, 0)
	var sws []graph.NodeID
	for i := 0; i < 4; i++ {
		sws = append(sws, g.AddSwitch(float64(i/2)*5000, float64(i%2)*100, 16))
	}
	g.MustAddEdge(sws[0], sws[1], 100)
	g.MustAddEdge(sws[2], sws[3], 100)
	g.MustAddEdge(sws[1], sws[2], 4900)
	for i := 0; i < 8; i++ {
		u := g.AddUser(float64(i/4)*5000, 200+float64(i%4))
		g.MustAddEdge(u, sws[(i/4)*2], 300)
		g.MustAddEdge(u, sws[(i/4)*2+1], 300)
	}
	s, err := service.NewSharded(service.ShardedConfig{
		Config: service.Config{Graph: g}, Shards: 2, PartitionSeed: 1,
	})
	if err != nil {
		t.Fatalf("service.NewSharded: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// testQoSDaemon boots the small daemon with a tenant policy: "hog" is on a
// tight quota, "calm" is unlimited.
func testQoSDaemon(t *testing.T) string {
	t.Helper()
	g := graph.New(6, 8)
	for i := 0; i < 4; i++ {
		g.AddUser(float64(i)*1000, 0)
	}
	g.AddSwitch(1500, 1000, 8)
	g.AddSwitch(1500, 2000, 8)
	for u := graph.NodeID(0); u < 4; u++ {
		g.MustAddEdge(u, 4, 1200)
		g.MustAddEdge(u, 5, 1400)
	}
	s, err := service.New(service.Config{Graph: g, QoS: &qos.Config{
		Tenants: []qos.TenantSpec{
			{ID: "hog", RatePerSec: 2, Burst: 1},
			{ID: "calm", Weight: 2},
		},
	}})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestParseTenantMix(t *testing.T) {
	mix, err := parseTenantMix("gold=3, bronze=1,plain")
	if err != nil {
		t.Fatalf("parseTenantMix: %v", err)
	}
	want := []tenantWeight{{"gold", 3}, {"bronze", 1}, {"plain", 1}}
	if fmt.Sprint(mix) != fmt.Sprint(want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
	for _, bad := range []string{"", "=3", "a=0", "a=-1", "a=x", ","} {
		if _, err := parseTenantMix(bad); err == nil {
			t.Errorf("parseTenantMix(%q) succeeded", bad)
		}
	}

	// Assignment is deterministic for a seed and respects the weights.
	names := assignTenants(4000, mix, rand.New(rand.NewSource(7)))
	again := assignTenants(4000, mix, rand.New(rand.NewSource(7)))
	counts := map[string]int{}
	for i, n := range names {
		if n != again[i] {
			t.Fatal("assignTenants is not deterministic")
		}
		counts[n]++
	}
	if counts["gold"] < 2*counts["bronze"] || counts["bronze"] == 0 || counts["plain"] == 0 {
		t.Fatalf("weighted draw looks wrong: %v", counts)
	}
}

// TestTenantMixAgainstQoSDaemon replays a weighted two-tenant mix into a
// daemon whose "hog" tenant has a tight quota: the per-tenant breakdown must
// show hog throttled and calm untouched, and the server tenants section must
// agree.
func TestTenantMixAgainstQoSDaemon(t *testing.T) {
	addr := testQoSDaemon(t)
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "24", "-unit", "1ms",
		"-tenants", "hog=3,calm=1", "-min-accepted", "1",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"tenant breakdown:", "throttled 429:", "server tenants:", "hog", "calm"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "throttled 429:  0\n") {
		t.Errorf("hog quota never tripped:\n%s", out)
	}
}

// TestRetryHonorsRetryAfter sends an all-hog mix with a retry budget: the
// requests bounced by the quota must wait out Retry-After, land on a
// refilled bucket, and be reported as retried-then-accepted.
func TestRetryHonorsRetryAfter(t *testing.T) {
	addr := testQoSDaemon(t)
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "8", "-unit", "1ms",
		"-tenants", "hog", "-retry", "1", "-min-accepted", "2",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	var retried int
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "retried-then-accepted: "); ok {
			if _, err := fmt.Sscanf(rest, "%d", &retried); err != nil {
				t.Fatalf("bad retried line %q", line)
			}
		}
	}
	if retried < 1 {
		t.Fatalf("no request was retried then accepted:\n%s", out)
	}
}

func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.Contains(buf.String(), "quantumnet") {
		t.Fatalf("version output: %q", buf.String())
	}
}

func TestRequiresAddr(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), nil, &buf); err == nil {
		t.Fatal("run without -addr succeeded")
	}
}

func TestReplayAgainstDaemon(t *testing.T) {
	addr := testDaemon(t)
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "25", "-unit", "2ms", "-min-accepted", "1",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"accepted:", "infeasible:", "latency:", "server batches:", "acceptance ratio:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// -arrival swaps the replay's traffic model: each named process must run to
// completion and report itself in the summary; an unknown one is a usage
// error.
func TestArrivalProcessSelection(t *testing.T) {
	for _, proc := range []string{"poisson", "diurnal", "flash"} {
		// A fresh daemon per process: flash packs every arrival into one
		// short burst, so sessions still held from a previous replay would
		// leave it nothing to admit.
		addr := testDaemon(t)
		var buf strings.Builder
		err := run(context.Background(), []string{
			"-addr", addr, "-sessions", "12", "-unit", "1ms",
			"-arrival", proc, "-min-accepted", "1",
		}, &buf)
		if err != nil {
			t.Fatalf("%s: run: %v\n%s", proc, err, buf.String())
		}
		if !strings.Contains(buf.String(), "arrival process: "+proc) {
			t.Errorf("%s: summary does not report the process:\n%s", proc, buf.String())
		}
	}
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-addr", testDaemon(t), "-sessions", "2", "-unit", "1ms", "-arrival", "bursty",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "bursty") {
		t.Fatalf("want unknown-process error, got %v", err)
	}
}

// -affinity 1 must rewrite every session onto a single region: the shard
// breakdown prints no cross-region row, and the run still succeeds.
func TestAffinityForcesSingleRegion(t *testing.T) {
	addr := testShardedDaemon(t)
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "30", "-unit", "1ms", "-group-max", "3",
		"-affinity", "1", "-min-accepted", "1",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "shard breakdown") {
		t.Fatalf("no shard breakdown printed:\n%s", out)
	}
	if strings.Contains(out, "cross ") {
		t.Errorf("affinity 1 still produced cross-region sessions:\n%s", out)
	}
	if !strings.Contains(out, "solve cache:") {
		t.Errorf("solve cache counters not printed:\n%s", out)
	}
}

// -affinity against an unsharded daemon is a usage error, not a silent no-op.
func TestAffinityNeedsShardedDaemon(t *testing.T) {
	addr := testDaemon(t)
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "2", "-unit", "1ms", "-affinity", "0.5",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("want sharded-daemon error, got %v", err)
	}
}

func TestMinAcceptedGate(t *testing.T) {
	addr := testDaemon(t)
	var buf strings.Builder
	// 26 sessions cannot all be accepted on an 8+8-qubit network with long
	// holds relative to the replay, but demanding more accepts than
	// sessions is a guaranteed failure either way — the gate must trip.
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "5", "-unit", time.Millisecond.String(), "-min-accepted", "6",
	}, &buf)
	if err == nil {
		t.Fatal("min-accepted gate did not trip")
	}
}
