package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/service"
)

func testDaemon(t *testing.T) string {
	t.Helper()
	g := graph.New(6, 8)
	for i := 0; i < 4; i++ {
		g.AddUser(float64(i)*1000, 0)
	}
	g.AddSwitch(1500, 1000, 8)
	g.AddSwitch(1500, 2000, 8)
	for u := graph.NodeID(0); u < 4; u++ {
		g.MustAddEdge(u, 4, 1200)
		g.MustAddEdge(u, 5, 1400)
	}
	s, err := service.New(service.Config{Graph: g})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.Contains(buf.String(), "quantumnet") {
		t.Fatalf("version output: %q", buf.String())
	}
}

func TestRequiresAddr(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), nil, &buf); err == nil {
		t.Fatal("run without -addr succeeded")
	}
}

func TestReplayAgainstDaemon(t *testing.T) {
	addr := testDaemon(t)
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "25", "-unit", "2ms", "-min-accepted", "1",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"accepted:", "infeasible:", "latency:", "server batches:", "acceptance ratio:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMinAcceptedGate(t *testing.T) {
	addr := testDaemon(t)
	var buf strings.Builder
	// 26 sessions cannot all be accepted on an 8+8-qubit network with long
	// holds relative to the replay, but demanding more accepts than
	// sessions is a guaranteed failure either way — the gate must trip.
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "5", "-unit", time.Millisecond.String(), "-min-accepted", "6",
	}, &buf)
	if err == nil {
		t.Fatal("min-accepted gate did not trip")
	}
}
