// Command qload replays a generated session workload against a running
// muerpd daemon, measuring end-to-end admission throughput and latency. It
// fetches the daemon's topology, draws a seeded arrival stream from the
// shared traffic models (internal/workload — the same generators that feed
// the slotted simulator), and fires the sessions at scaled wall-clock
// times: one workload time unit lasts -unit of real time, and each
// accepted session's TTL is its Hold scaled the same way — so the daemon
// sees the loss-network dynamics the paper models.
//
// Usage:
//
//	qload -addr host:port [flags]
//
//	-sessions       number of requests           (default 50)
//	-arrival        poisson | diurnal | flash    (default poisson)
//	-interarrival   mean inter-arrival (units)   (default 1)
//	-hold           mean session hold (units)    (default 5)
//	-group-min/max  session size bounds          (default 2..4)
//	-affinity       single-region rewrite probability, sharded only (default -1 = off)
//	-seed           RNG seed                     (default 1)
//	-unit           real duration of one unit    (default 10ms)
//	-timeout        per-request HTTP timeout     (default 5s)
//	-tenants        weighted tenant mix, e.g. "gold=3,bronze=1"; each request
//	                is tagged with a tenant drawn by weight (empty = untagged)
//	-retry          on 429 + Retry-After, wait as told and retry up to this
//	                many times per request (default 0 = report the 429)
//	-min-accepted   fail unless >= this many accepted (default 1)
//	-min-rps        fail unless achieved throughput >= this (default 0 = off)
//	-v              print every outcome
//	-version        print build info and exit
//
// With -tenants the summary adds a per-tenant breakdown — accepted,
// infeasible, throttled (429 over quota) vs queue-full 429, errors — and
// with -retry the requests that were throttled first but accepted on a
// retry are reported separately (they are still one accepted session each).
//
// Against a sharded daemon (muerpd -shards N) qload fetches GET /partition,
// classifies every request by its users' regions, and prints a per-shard
// throughput/latency breakdown — single-region traffic per home shard plus
// one "cross" row for the sessions that went through the two-phase
// cross-region path — alongside the server's router counters. The -affinity
// knob controls that mix: each generated session is rewritten with the given
// probability to draw all its users from a single region (regions rotate
// round-robin), so sweeps can dial the cross-region share from
// workload-natural (-affinity -1 or 0) down to almost none (-affinity 1).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/muerp/quantumnet/internal/buildinfo"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/topology"
	"github.com/muerp/quantumnet/internal/workload"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qload:", err)
		os.Exit(1)
	}
}

// outcome classifies one replayed request.
type outcome struct {
	status  int
	code    string // error body code for non-2xx: "throttled", "queue_full", ...
	latency time.Duration
	err     error
	retries int  // 429 retries actually taken
	retried bool // accepted, but only after at least one Retry-After wait
}

// tenantWeight is one entry of the -tenants mix spec.
type tenantWeight struct {
	name   string
	weight int
}

// parseTenantMix parses "gold=3,bronze=1" (weight defaults to 1 when the
// "=n" part is omitted).
func parseTenantMix(spec string) ([]tenantWeight, error) {
	var mix []tenantWeight
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w := part, 1
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			name = part[:eq]
			if _, err := fmt.Sscanf(part[eq+1:], "%d", &w); err != nil || w < 1 {
				return nil, fmt.Errorf("-tenants: bad weight in %q", part)
			}
		}
		if name == "" {
			return nil, fmt.Errorf("-tenants: empty tenant name in %q", spec)
		}
		mix = append(mix, tenantWeight{name: name, weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("-tenants: no tenants in %q", spec)
	}
	return mix, nil
}

// assignTenants draws one tenant per request by mix weight, deterministically
// for a given seed.
func assignTenants(n int, mix []tenantWeight, rng *rand.Rand) []string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	names := make([]string, n)
	for i := range names {
		pick := rng.Intn(total)
		for _, m := range mix {
			if pick < m.weight {
				names[i] = m.name
				break
			}
			pick -= m.weight
		}
	}
	return names
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "", "daemon address (host:port), required")
		sessions    = fs.Int("sessions", 50, "number of session requests")
		arrival     = fs.String("arrival", "poisson", "arrival process: poisson, diurnal or flash")
		inter       = fs.Float64("interarrival", 1, "mean inter-arrival time (workload units)")
		hold        = fs.Float64("hold", 5, "mean session hold (workload units)")
		groupMin    = fs.Int("group-min", 2, "minimum users per session")
		groupMax    = fs.Int("group-max", 4, "maximum users per session")
		affinity    = fs.Float64("affinity", -1, "probability a session is rewritten to a single region (sharded daemon only, -1 = off)")
		seed        = fs.Int64("seed", 1, "RNG seed")
		unit        = fs.Duration("unit", 10*time.Millisecond, "real duration of one workload time unit")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
		tenantsSpec = fs.String("tenants", "", `weighted tenant mix, e.g. "gold=3,bronze=1" (empty = untagged)`)
		retry       = fs.Int("retry", 0, "retry a 429 this many times, waiting per its Retry-After header")
		minAccepted = fs.Int("min-accepted", 1, "fail unless at least this many sessions are accepted")
		minRPS      = fs.Float64("min-rps", 0, "fail unless achieved request throughput is at least this (0 = no gate)")
		verbose     = fs.Bool("v", false, "print every outcome")
		version     = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String())
		return nil
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *unit <= 0 {
		return fmt.Errorf("-unit must be positive, got %v", *unit)
	}
	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}

	g, err := fetchTopology(ctx, client, base)
	if err != nil {
		return err
	}
	part, err := fetchPartition(ctx, client, base)
	if err != nil {
		return err
	}
	if *sessions < 1 {
		return fmt.Errorf("-sessions must be >= 1, got %d", *sessions)
	}
	if *inter <= 0 {
		return fmt.Errorf("-interarrival must be positive, got %v", *inter)
	}
	// The process's time horizon spans the expected replay: -sessions
	// arrivals at a mean rate of one per -interarrival units. ArrivalsN then
	// thins until exactly -sessions arrivals are drawn, so diurnal and flash
	// runs keep the session budget while reshaping when the load lands.
	proc, err := workload.ParseProcess(*arrival, 1 / *inter, float64(*sessions)*(*inter))
	if err != nil {
		return err
	}
	trafficRNG := rand.New(rand.NewSource(*seed))
	arrivals, err := workload.ArrivalsN(proc, *sessions, trafficRNG)
	if err != nil {
		return err
	}
	requests, err := workload.Draw{
		MeanHold: *hold, MinUsers: *groupMin, MaxUsers: *groupMax,
	}.Sessions(g, arrivals, trafficRNG)
	if err != nil {
		return err
	}
	if *affinity >= 0 {
		if *affinity > 1 {
			return fmt.Errorf("-affinity must be in [0, 1], got %v", *affinity)
		}
		if part == nil {
			return fmt.Errorf("-affinity needs a sharded daemon (no /partition at %s)", base)
		}
		applyAffinity(requests, part, g, *affinity, rand.New(rand.NewSource(*seed+1)))
	}
	if *retry < 0 {
		return fmt.Errorf("-retry must be >= 0, got %d", *retry)
	}
	var tenants []string // per-request tenant tag; nil = untagged
	if *tenantsSpec != "" {
		mix, err := parseTenantMix(*tenantsSpec)
		if err != nil {
			return err
		}
		tenants = assignTenants(len(requests), mix, rand.New(rand.NewSource(*seed+2)))
	}
	tenantOf := func(i int) string {
		if tenants == nil {
			return ""
		}
		return tenants[i]
	}

	fmt.Fprintf(out, "qload: %d sessions against %s (unit=%v)\n", len(requests), base, *unit)
	fmt.Fprintf(out, "arrival process: %s (mean %g/unit, peak %g/unit)\n", proc.Name(), 1 / *inter, proc.MaxRate())
	outcomes := make([]outcome, len(requests))
	var wg sync.WaitGroup
	start := time.Now()
	for i, req := range requests {
		due := start.Add(time.Duration(req.Arrival * float64(*unit)))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		wg.Add(1)
		go func(i int, req sched.Request) {
			defer wg.Done()
			outcomes[i] = fire(ctx, client, base, req, *unit, tenantOf(i), *retry)
		}(i, req)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var accepted, infeasible, throttled, queueFull, failed, retriedOK int
	latencies := make([]time.Duration, 0, len(outcomes))
	for i, o := range outcomes {
		switch {
		case o.err != nil:
			failed++
		case o.status == http.StatusCreated:
			accepted++
			if o.retried {
				retriedOK++
			}
		case o.status == http.StatusConflict:
			infeasible++
		case o.status == http.StatusTooManyRequests && o.code == "throttled":
			throttled++
		case o.status == http.StatusTooManyRequests:
			queueFull++
		default:
			failed++
		}
		if o.err == nil {
			latencies = append(latencies, o.latency)
		}
		if *verbose {
			fmt.Fprintf(out, "  session %3d: tenant %q status %d retries %d latency %v err %v\n",
				requests[i].ID, tenantOf(i), o.status, o.retries, o.latency.Round(time.Microsecond), o.err)
		}
	}

	fmt.Fprintf(out, "elapsed:        %v (%.1f req/s)\n", elapsed.Round(time.Millisecond),
		float64(len(requests))/elapsed.Seconds())
	fmt.Fprintf(out, "accepted:       %d\n", accepted)
	fmt.Fprintf(out, "infeasible:     %d\n", infeasible)
	fmt.Fprintf(out, "throttled 429:  %d\n", throttled)
	fmt.Fprintf(out, "queue-full 429: %d\n", queueFull)
	fmt.Fprintf(out, "errors:         %d\n", failed)
	if *retry > 0 {
		fmt.Fprintf(out, "retried-then-accepted: %d\n", retriedOK)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		q := func(p float64) time.Duration { return latencies[int(p*float64(len(latencies)-1))] }
		fmt.Fprintf(out, "latency:        p50 %v  p95 %v  max %v\n",
			q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
			latencies[len(latencies)-1].Round(time.Microsecond))
	}
	if part != nil {
		printShardBreakdown(out, part, requests, outcomes)
	}
	if tenants != nil {
		printTenantBreakdown(out, tenants, outcomes)
	}
	if err := printServerMetrics(ctx, client, base, out); err != nil {
		fmt.Fprintf(out, "metrics:        unavailable (%v)\n", err)
	}
	if accepted < *minAccepted {
		return fmt.Errorf("accepted %d sessions, need at least %d", accepted, *minAccepted)
	}
	if rps := float64(len(requests)) / elapsed.Seconds(); *minRPS > 0 && rps < *minRPS {
		return fmt.Errorf("achieved %.1f req/s, need at least %.1f", rps, *minRPS)
	}
	return nil
}

// applyAffinity rewrites each request, with the given probability, to draw
// all its users from one region, preserving the group size. Regions rotate
// round-robin among those with enough users for the group, so forced
// single-region load spreads across shards; sessions that lose the coin
// flip — or that no region can host — keep their generated user set, making
// affinity a lower bound on the single-region share, not an exact one.
func applyAffinity(requests []sched.Request, part *topology.Partition, g *graph.Graph, affinity float64, rng *rand.Rand) {
	regionUsers := make([][]graph.NodeID, part.K)
	for _, u := range g.Users() {
		r := part.RegionOf(u)
		regionUsers[r] = append(regionUsers[r], u)
	}
	next := 0
	for i := range requests {
		if rng.Float64() >= affinity {
			continue
		}
		size := len(requests[i].Users)
		chosen := -1
		for probe := 0; probe < part.K; probe++ {
			r := (next + probe) % part.K
			if len(regionUsers[r]) >= size {
				chosen = r
				next = r + 1
				break
			}
		}
		if chosen < 0 {
			continue
		}
		pool := regionUsers[chosen]
		perm := rng.Perm(len(pool))
		users := make([]graph.NodeID, size)
		for j := range users {
			users[j] = pool[perm[j]]
		}
		requests[i].Users = users
	}
}

// requestClass maps a request onto the shard that would decide it: its
// users' common region, or -1 for the cross-region path.
func requestClass(part *topology.Partition, users []graph.NodeID) int {
	r := part.RegionOf(users[0])
	for _, u := range users[1:] {
		if part.RegionOf(u) != r {
			return -1
		}
	}
	return r
}

// printShardBreakdown splits the replay's outcomes by deciding shard and
// prints one throughput/latency row per shard plus one for the cross-region
// path.
func printShardBreakdown(out io.Writer, part *topology.Partition, requests []sched.Request, outcomes []outcome) {
	type row struct {
		total, accepted int
		lats            []time.Duration
	}
	rows := make([]row, part.K+1) // rows[K] is the cross-region class
	for i, req := range requests {
		cls := requestClass(part, req.Users)
		if cls < 0 {
			cls = part.K
		}
		rows[cls].total++
		if outcomes[i].status == http.StatusCreated {
			rows[cls].accepted++
		}
		if outcomes[i].err == nil {
			rows[cls].lats = append(rows[cls].lats, outcomes[i].latency)
		}
	}
	fmt.Fprintf(out, "shard breakdown (%d regions):\n", part.K)
	for cls, r := range rows {
		if r.total == 0 {
			continue
		}
		name := fmt.Sprintf("shard %d", cls)
		if cls == part.K {
			name = "cross  "
		}
		line := fmt.Sprintf("  %s  %4d requests  %4d accepted", name, r.total, r.accepted)
		if len(r.lats) > 0 {
			sort.Slice(r.lats, func(i, j int) bool { return r.lats[i] < r.lats[j] })
			q := func(p float64) time.Duration { return r.lats[int(p*float64(len(r.lats)-1))] }
			line += fmt.Sprintf("  p50 %v  p95 %v", q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond))
		}
		fmt.Fprintln(out, line)
	}
}

// printTenantBreakdown splits the replay by assigned tenant: one row per
// tenant with its acceptance and 429 mix. Requests accepted only after a
// Retry-After wait count as accepted and are also surfaced separately.
func printTenantBreakdown(out io.Writer, tenants []string, outcomes []outcome) {
	type row struct {
		total, accepted, infeasible, throttled, queueFull, failed, retriedOK int
	}
	rows := make(map[string]*row)
	names := make([]string, 0, 4)
	for i, o := range outcomes {
		r := rows[tenants[i]]
		if r == nil {
			r = &row{}
			rows[tenants[i]] = r
			names = append(names, tenants[i])
		}
		r.total++
		switch {
		case o.err != nil:
			r.failed++
		case o.status == http.StatusCreated:
			r.accepted++
			if o.retried {
				r.retriedOK++
			}
		case o.status == http.StatusConflict:
			r.infeasible++
		case o.status == http.StatusTooManyRequests && o.code == "throttled":
			r.throttled++
		case o.status == http.StatusTooManyRequests:
			r.queueFull++
		default:
			r.failed++
		}
	}
	sort.Strings(names)
	fmt.Fprintf(out, "tenant breakdown:\n")
	for _, name := range names {
		r := rows[name]
		line := fmt.Sprintf("  %-10s %4d requests  %4d accepted  %4d infeasible  %4d throttled  %4d queue-full  %4d errors",
			name, r.total, r.accepted, r.infeasible, r.throttled, r.queueFull, r.failed)
		if r.retriedOK > 0 {
			line += fmt.Sprintf("  (%d retried-then-accepted)", r.retriedOK)
		}
		fmt.Fprintln(out, line)
	}
}

// fire posts one session request, optionally tenant-tagged. On 429 it obeys
// the Retry-After header up to the retry budget; the reported latency spans
// the whole exchange including the waits, mirroring what the caller felt.
func fire(ctx context.Context, client *http.Client, base string, req sched.Request, unit time.Duration, tenant string, retry int) outcome {
	payload := map[string]interface{}{
		"users":  req.Users,
		"ttl_ms": int64(req.Hold * float64(unit) / float64(time.Millisecond)),
	}
	if tenant != "" {
		payload["tenant"] = tenant
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return outcome{err: err}
	}
	t0 := time.Now()
	var o outcome
	for attempt := 0; ; attempt++ {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/sessions", bytes.NewReader(body))
		if err != nil {
			return outcome{err: err, retries: o.retries}
		}
		httpReq.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(httpReq)
		if err != nil {
			return outcome{err: err, latency: time.Since(t0), retries: o.retries}
		}
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb)
		_, _ = io.Copy(io.Discard, resp.Body)
		wait := retryAfter(resp)
		_ = resp.Body.Close()
		o.status = resp.StatusCode
		o.code = eb.Error
		o.latency = time.Since(t0)
		o.retried = o.retries > 0 && resp.StatusCode == http.StatusCreated
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= retry {
			return o
		}
		select {
		case <-time.After(wait):
			o.retries++
		case <-ctx.Done():
			o.err = ctx.Err()
			return o
		}
	}
}

// retryAfter reads a 429's Retry-After header (delay-seconds form), clamped
// to [1s, 10s]; anything absent or unparseable waits the 1s floor.
func retryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if v := resp.Header.Get("Retry-After"); v != "" {
		var secs int
		if _, err := fmt.Sscanf(v, "%d", &secs); err == nil && secs > 1 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

func fetchTopology(ctx context.Context, client *http.Client, base string) (*graph.Graph, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/topology", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetch topology: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch topology: status %d", resp.StatusCode)
	}
	return graph.ReadJSON(resp.Body)
}

// fetchPartition asks the daemon for its region partition; nil without
// error means the daemon is unsharded (404).
func fetchPartition(ctx context.Context, client *http.Client, base string) (*topology.Partition, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/partition", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetch partition: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch partition: status %d", resp.StatusCode)
	}
	var p topology.Partition
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("decode partition: %w", err)
	}
	return &p, nil
}

// printServerMetrics surfaces the daemon-side view after the run: the
// shared admission summary plus batching and cache effectiveness.
func printServerMetrics(ctx context.Context, client *http.Client, base string, out io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	var m struct {
		Batches struct {
			Count    int64   `json:"count"`
			MeanSize float64 `json:"mean_size"`
			MaxSize  int64   `json:"max_size"`
		} `json:"batches"`
		Admission sched.Summary `json:"admission"`
		Router    *struct {
			Shards          int     `json:"shards"`
			SingleRegion    int64   `json:"single_region"`
			CrossRegion     int64   `json:"cross_region"`
			CrossRegionRate float64 `json:"cross_region_rate"`
			Prepares        int64   `json:"prepares"`
			Conflicts       int64   `json:"conflicts"`
			Retries         int64   `json:"retries"`
			Aborts          int64   `json:"aborts"`
			GlobalFallbacks int64   `json:"global_fallbacks"`
		} `json:"router"`
		Speculation *struct {
			Workers          int     `json:"workers"`
			Solves           int64   `json:"solves"`
			Commits          int64   `json:"commits"`
			Conflicts        int64   `json:"conflicts"`
			Resolves         int64   `json:"resolves"`
			Fallbacks        int64   `json:"fallbacks"`
			WastedSolveRatio float64 `json:"wasted_solve_ratio"`
			MaxParallel      int64   `json:"max_parallel"`
		} `json:"speculation"`
		SolveCache *struct {
			Capacity  int     `json:"capacity"`
			Size      int     `json:"size"`
			ExactHits int64   `json:"exact_hits"`
			EpochHits int64   `json:"epoch_hits"`
			Misses    int64   `json:"misses"`
			Evictions int64   `json:"evictions"`
			HitRate   float64 `json:"hit_rate"`
		} `json:"solve_cache"`
		FootprintPool *struct {
			Gets      int64   `json:"gets"`
			Allocs    int64   `json:"allocs"`
			ReuseRate float64 `json:"reuse_rate"`
		} `json:"footprint_pool"`
		Tenants []struct {
			ID        string `json:"id"`
			Weight    int    `json:"weight"`
			Priority  int    `json:"priority"`
			Accepted  int64  `json:"accepted"`
			Rejected  int64  `json:"rejected"`
			Throttled int64  `json:"throttled"`
			QueueFull int64  `json:"queue_full"`
			Latency   struct {
				Count  int64   `json:"count"`
				MeanMs float64 `json:"mean_ms"`
			} `json:"admission_latency"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return err
	}
	fmt.Fprintf(out, "server batches: %d (mean %.2f, max %d)\n",
		m.Batches.Count, m.Batches.MeanSize, m.Batches.MaxSize)
	if r := m.Router; r != nil {
		fmt.Fprintf(out, "router:         %d shards, %d single-region, %d cross-region (%.1f%%), 2pc prepares %d conflicts %d retries %d aborts %d fallbacks %d\n",
			r.Shards, r.SingleRegion, r.CrossRegion, r.CrossRegionRate*100,
			r.Prepares, r.Conflicts, r.Retries, r.Aborts, r.GlobalFallbacks)
	}
	if sp := m.Speculation; sp != nil {
		fmt.Fprintf(out, "speculation:    workers %d, solves %d, commits %d, conflicts %d (resolved %d, fallback %d), wasted %.1f%%, max parallel %d\n",
			sp.Workers, sp.Solves, sp.Commits, sp.Conflicts, sp.Resolves, sp.Fallbacks,
			sp.WastedSolveRatio*100, sp.MaxParallel)
	}
	if sc := m.SolveCache; sc != nil {
		fmt.Fprintf(out, "solve cache:    %d/%d entries, %d exact + %d epoch hits, %d misses, %d evictions (hit rate %.1f%%)\n",
			sc.Size, sc.Capacity, sc.ExactHits, sc.EpochHits, sc.Misses, sc.Evictions, sc.HitRate*100)
	}
	if fp := m.FootprintPool; fp != nil && fp.Gets > 0 {
		fmt.Fprintf(out, "footprint pool: %d gets, %d allocs (%.1f%% reused)\n",
			fp.Gets, fp.Allocs, fp.ReuseRate*100)
	}
	if len(m.Tenants) > 0 {
		fmt.Fprintf(out, "server tenants:\n")
		for _, tm := range m.Tenants {
			fmt.Fprintf(out, "  %-10s w%d p%d  accepted %d  rejected %d  throttled %d  queue-full %d  mean latency %.2fms (%d obs)\n",
				tm.ID, tm.Weight, tm.Priority, tm.Accepted, tm.Rejected,
				tm.Throttled, tm.QueueFull, tm.Latency.MeanMs, tm.Latency.Count)
		}
	}
	fmt.Fprintf(out, "server summary:\n%s", indent(m.Admission.String(), "  "))
	return nil
}

func indent(s, prefix string) string {
	s = strings.TrimRight(s, "\n")
	return prefix + strings.ReplaceAll(s, "\n", "\n"+prefix) + "\n"
}
