package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/qos"
	"github.com/muerp/quantumnet/internal/service"
)

// star builds 4 users around one roomy switch so several sessions fit.
func star(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5, 4)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddUser(0, 2000)
	g.AddUser(2000, 2000)
	g.AddSwitch(1000, 1000, 8)
	for u := graph.NodeID(0); u < 4; u++ {
		g.MustAddEdge(u, 4, 1500)
	}
	return g
}

func TestRecoverToolVerifiesLiveDirectory(t *testing.T) {
	dir := t.TempDir()
	s, err := service.New(service.Config{Graph: star(t), DataDir: dir, MaxTTL: time.Hour})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	var last string
	for i := 0; i < 3; i++ {
		info, err := s.Submit(context.Background(), []graph.NodeID{0, 1, 2, 3}[:2+i%2], time.Hour)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		last = info.ID
	}
	if err := s.Delete(last); err != nil {
		t.Fatalf("delete: %v", err)
	}

	// The WAL holds every acknowledged record (Submit waits for the fsync),
	// so the tool can replay the directory while the daemon still runs.
	var out bytes.Buffer
	if err := run([]string{"-data-dir", dir}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "sessions:  2 live") {
		t.Fatalf("expected 2 live sessions in report:\n%s", text)
	}
	if !strings.Contains(text, "verify:") {
		t.Fatalf("verification did not run:\n%s", text)
	}

	// -json appends a machine-readable dump matching the live state.
	out.Reset()
	if err := run([]string{"-data-dir", dir, "-json"}, &out); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	blob := out.String()
	var st service.State
	if err := json.Unmarshal([]byte(blob[strings.Index(blob, "{"):]), &st); err != nil {
		t.Fatalf("decode dump: %v", err)
	}
	want, err := json.Marshal(s.StateDump())
	if err != nil {
		t.Fatalf("marshal live state: %v", err)
	}
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("re-marshal dump: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("tool state differs from live state\nlive: %s\ntool: %s", want, got)
	}
}

// TestRecoverToolTenantCensus writes tenant-tagged sessions into a durable
// directory and checks the report adds a per-tenant census line; the plain
// test above keeps the old untagged shape (no tenants line).
func TestRecoverToolTenantCensus(t *testing.T) {
	dir := t.TempDir()
	s, err := service.New(service.Config{
		Graph: star(t), DataDir: dir, MaxTTL: time.Hour,
		QoS: &qos.Config{Tenants: []qos.TenantSpec{{ID: "gold"}, {ID: "bronze"}}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	for _, tenant := range []string{"gold", "gold", "bronze"} {
		if _, err := s.SubmitTenant(context.Background(), tenant, []graph.NodeID{0, 1}, time.Hour); err != nil {
			t.Fatalf("submit %s: %v", tenant, err)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-data-dir", dir}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "tenants:   gold=2, bronze=1") &&
		!strings.Contains(out.String(), "bronze=1, gold=2") {
		t.Fatalf("missing tenant census:\n%s", out.String())
	}
}

func TestRecoverToolRejectsNonDataDir(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-data-dir", t.TempDir()}, &out); err == nil {
		t.Fatal("run accepted a directory without a pinned topology")
	}
	if err := run([]string{}, &out); err == nil {
		t.Fatal("run accepted a missing -data-dir")
	}
}

// dumbbell builds two roomy switches joined by one edge, two users on each:
// the smallest topology with genuinely cross-region sessions under k=2.
func dumbbell(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(6, 5)
	g.AddUser(0, 0)
	g.AddUser(0, 2000)
	g.AddUser(4000, 0)
	g.AddUser(4000, 2000)
	a := g.AddSwitch(1000, 1000, 8)
	b := g.AddSwitch(3000, 1000, 8)
	g.MustAddEdge(0, a, 1500)
	g.MustAddEdge(1, a, 1500)
	g.MustAddEdge(2, b, 1500)
	g.MustAddEdge(3, b, 1500)
	g.MustAddEdge(a, b, 1500)
	return g
}

// TestRecoverToolShardedDirectory drives a sharded daemon over a dumbbell
// topology, then replays the directory with the tool: it must detect the
// pinned partition, recover both WAL streams, verify each shard and the
// composed state, and dump a composed JSON state matching the live one.
func TestRecoverToolShardedDirectory(t *testing.T) {
	dir := t.TempDir()
	g := dumbbell(t)
	s, err := service.NewSharded(service.ShardedConfig{
		Config: service.Config{Graph: g, DataDir: dir, MaxTTL: time.Hour},
		Shards: 2, PartitionSeed: 1,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	part := s.Partition()
	var local, cross []graph.NodeID
	for _, u := range g.Users() {
		if part.RegionOf(u) == part.RegionOf(g.Users()[0]) {
			local = append(local, u)
		} else {
			cross = append(cross, u)
		}
	}
	if len(local) < 2 || len(cross) < 1 {
		t.Fatalf("degenerate partition: local=%v cross=%v", local, cross)
	}
	if _, err := s.Submit(context.Background(), local[:2], time.Hour); err != nil {
		t.Fatalf("local submit: %v", err)
	}
	info, err := s.Submit(context.Background(), []graph.NodeID{local[0], cross[0]}, time.Hour)
	if err != nil {
		t.Fatalf("cross submit: %v", err)
	}
	doomed, err := s.Submit(context.Background(), []graph.NodeID{local[1], cross[0]}, time.Hour)
	if err != nil {
		t.Fatalf("second cross submit: %v", err)
	}
	if err := s.Delete(doomed.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}

	var out bytes.Buffer
	if err := run([]string{"-data-dir", dir}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "partition: 2 regions") {
		t.Fatalf("sharded layout not detected:\n%s", text)
	}
	if !strings.Contains(text, "sessions:  2 live") {
		t.Fatalf("expected 2 live sessions in report:\n%s", text)
	}
	if !strings.Contains(text, "verify:") {
		t.Fatalf("verification did not run:\n%s", text)
	}

	out.Reset()
	if err := run([]string{"-data-dir", dir, "-json"}, &out); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	blob := out.String()
	var st service.State
	if err := json.Unmarshal([]byte(blob[strings.Index(blob, "{"):]), &st); err != nil {
		t.Fatalf("decode dump: %v", err)
	}
	composed, torn, err := s.ComposedState()
	if err != nil || len(torn) > 0 {
		t.Fatalf("live composed state: torn=%v err=%v", torn, err)
	}
	want, err := json.Marshal(composed)
	if err != nil {
		t.Fatalf("marshal live state: %v", err)
	}
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("re-marshal dump: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("tool state differs from live composed state\nlive: %s\ntool: %s", want, got)
	}
	found := false
	for _, ss := range st.Sessions {
		if ss.Info.ID == info.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-region session %s missing from composed dump:\n%s", info.ID, blob)
	}
}
