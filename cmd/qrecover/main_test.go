package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/service"
)

// star builds 4 users around one roomy switch so several sessions fit.
func star(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5, 4)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddUser(0, 2000)
	g.AddUser(2000, 2000)
	g.AddSwitch(1000, 1000, 8)
	for u := graph.NodeID(0); u < 4; u++ {
		g.MustAddEdge(u, 4, 1500)
	}
	return g
}

func TestRecoverToolVerifiesLiveDirectory(t *testing.T) {
	dir := t.TempDir()
	s, err := service.New(service.Config{Graph: star(t), DataDir: dir, MaxTTL: time.Hour})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	var last string
	for i := 0; i < 3; i++ {
		info, err := s.Submit(context.Background(), []graph.NodeID{0, 1, 2, 3}[:2+i%2], time.Hour)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		last = info.ID
	}
	if err := s.Delete(last); err != nil {
		t.Fatalf("delete: %v", err)
	}

	// The WAL holds every acknowledged record (Submit waits for the fsync),
	// so the tool can replay the directory while the daemon still runs.
	var out bytes.Buffer
	if err := run([]string{"-data-dir", dir}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "sessions:  2 live") {
		t.Fatalf("expected 2 live sessions in report:\n%s", text)
	}
	if !strings.Contains(text, "verify:") {
		t.Fatalf("verification did not run:\n%s", text)
	}

	// -json appends a machine-readable dump matching the live state.
	out.Reset()
	if err := run([]string{"-data-dir", dir, "-json"}, &out); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	blob := out.String()
	var st service.State
	if err := json.Unmarshal([]byte(blob[strings.Index(blob, "{"):]), &st); err != nil {
		t.Fatalf("decode dump: %v", err)
	}
	want, err := json.Marshal(s.StateDump())
	if err != nil {
		t.Fatalf("marshal live state: %v", err)
	}
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("re-marshal dump: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("tool state differs from live state\nlive: %s\ntool: %s", want, got)
	}
}

func TestRecoverToolRejectsNonDataDir(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-data-dir", t.TempDir()}, &out); err == nil {
		t.Fatal("run accepted a directory without a pinned topology")
	}
	if err := run([]string{}, &out); err == nil {
		t.Fatal("run accepted a missing -data-dir")
	}
}
