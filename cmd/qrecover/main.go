// Command qrecover replays a muerpd data directory offline: it rebuilds the
// admission state from the newest snapshot plus the WAL suffix — exactly
// the recovery a daemon boot performs — then cross-checks it before anyone
// restarts on top of it.
//
// Usage:
//
//	qrecover -data-dir DIR [-json] [-at RFC3339]
//
// The topology and physical parameters are read from the files muerpd
// pinned in the directory, so no generation flags are needed. Checks:
//
//   - every recovered session's tree revalidates against the topology
//     (quantum.ValidateTree: spanning, capacity, Eq. 1 rates),
//   - re-reserving every session's channels on a fresh ledger reproduces
//     the recovered per-switch occupancy exactly,
//   - session IDs are below the recovered ID counter.
//
// A directory written by a sharded daemon (muerpd -shards N pins a
// partition.json) is detected automatically: every shard's WAL stream is
// recovered and verified against its region graph, then the shards are
// composed into one full-topology state — which must itself verify, with
// no cross-region session torn between shards.
//
// Exit status 0 means the directory recovers cleanly; 1 means it does not
// (corrupt log, divergent occupancy, invalid tree). -json dumps the full
// recovered state for diffing; -at reports which sessions would already be
// expired at the given instant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qrecover:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qrecover", flag.ContinueOnError)
	var (
		dataDir  = fs.String("data-dir", "", "muerpd data directory to recover (required)")
		asJSON   = fs.Bool("json", false, "dump the recovered state as JSON")
		atFlag   = fs.String("at", "", "report expiries as of this RFC3339 instant (default: now)")
		noVerify = fs.Bool("no-verify", false, "skip the cross-checks; only replay")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	at := time.Now()
	if *atFlag != "" {
		var err error
		if at, err = time.Parse(time.RFC3339, *atFlag); err != nil {
			return fmt.Errorf("parse -at: %w", err)
		}
	}

	g, params, err := loadPinned(*dataDir)
	if err != nil {
		return err
	}

	// A pinned partition marks a sharded layout: recover every shard's WAL
	// stream independently, verify each against its region graph, and
	// compose the shards into one full-topology state for the report.
	part, sharded, err := service.LoadPartition(*dataDir, g)
	if err != nil {
		return err
	}

	t0 := time.Now()
	var st service.State
	var snapLine, walLine string
	if sharded {
		states := make([]service.State, part.K)
		var walRecords, nextSeq uint64
		snaps := 0
		for r := 0; r < part.K; r++ {
			rg := service.RegionGraph(g, part, r)
			rec, err := service.RecoverShard(*dataDir, r, rg)
			if err != nil {
				return fmt.Errorf("shard %d: %w", r, err)
			}
			if !*noVerify {
				if err := service.VerifyShardState(rg, params, rec.State); err != nil {
					return fmt.Errorf("shard %d verification failed: %w", r, err)
				}
			}
			if rec.SnapshotPath != "" {
				snaps++
			}
			walRecords += rec.WALRecords
			if rec.NextSeq > nextSeq {
				nextSeq = rec.NextSeq
			}
			states[r] = rec.State
		}
		var torn []string
		st, torn, err = service.ComposeShardStates(g, part, states)
		if err != nil {
			return err
		}
		if len(torn) > 0 {
			return fmt.Errorf("torn cross-region sessions: %v", torn)
		}
		snapLine = fmt.Sprintf("%d of %d shards from snapshots", snaps, part.K)
		walLine = fmt.Sprintf("%d records replayed across %d streams, max next seq %d", walRecords, part.K, nextSeq)
	} else {
		rec, err := service.Recover(*dataDir, g)
		if err != nil {
			return err
		}
		st = rec.State
		if rec.SnapshotPath != "" {
			snapLine = fmt.Sprintf("%s (covers %d records)", rec.SnapshotPath, rec.SnapshotSeq)
		} else {
			snapLine = "none (full WAL replay)"
		}
		walLine = fmt.Sprintf("%d records replayed, next seq %d", rec.WALRecords, rec.NextSeq)
	}
	dur := time.Since(t0)
	used := 0
	for _, id := range g.Switches() {
		used += g.Node(id).Qubits - st.Ledger.Free[id]
	}
	expired := 0
	for _, ss := range st.Sessions {
		if !ss.Info.ExpiresAt.After(at) {
			expired++
		}
	}
	fmt.Fprintf(out, "recovered %s in %v\n", *dataDir, dur.Round(time.Microsecond))
	if sharded {
		fmt.Fprintf(out, "  partition: %d regions (seed=%d, %d boundary switches, %d cut edges)\n",
			part.K, part.Seed, len(part.Boundary), part.CutEdges)
	}
	fmt.Fprintf(out, "  snapshot:  %s\n", snapLine)
	fmt.Fprintf(out, "  wal:       %s\n", walLine)
	fmt.Fprintf(out, "  sessions:  %d live (%d already expired at %s)\n", len(st.Sessions), expired, at.Format(time.RFC3339))
	// Tenant-tagged WAL records (DESIGN.md §11) surface here as a per-tenant
	// census; directories written before the QoS layer have only untagged
	// sessions and keep the old report shape.
	byTenant := map[string]int{}
	for _, ss := range st.Sessions {
		name := ss.Info.Tenant
		if name == "" {
			name = "default"
		}
		byTenant[name]++
	}
	if len(byTenant) > 1 || (len(byTenant) == 1 && byTenant["default"] == 0) {
		names := make([]string, 0, len(byTenant))
		for name := range byTenant {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(out, "  tenants:  ")
		for i, name := range names {
			if i > 0 {
				fmt.Fprintf(out, ",")
			}
			fmt.Fprintf(out, " %s=%d", name, byTenant[name])
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "  ledger:    %d qubits reserved, closure gen %d (%d closed)\n", used, st.Ledger.Gen, len(st.Ledger.Closed))

	if !*noVerify {
		if err := service.VerifyState(g, params, st); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintf(out, "  verify:    trees valid, occupancy matches, IDs consistent\n")
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	return nil
}

// loadPinned reads the topology and parameters muerpd stored alongside the
// WAL, so the tool replays against exactly the environment that wrote it.
func loadPinned(dataDir string) (*graph.Graph, quantum.Params, error) {
	f, err := os.Open(service.TopologyPath(dataDir))
	if err != nil {
		return nil, quantum.Params{}, fmt.Errorf("no pinned topology (is this a muerpd -data-dir?): %w", err)
	}
	defer func() { _ = f.Close() }()
	g, err := graph.ReadJSON(f)
	if err != nil {
		return nil, quantum.Params{}, fmt.Errorf("read pinned topology: %w", err)
	}
	raw, err := os.ReadFile(service.ParamsPath(dataDir))
	if err != nil {
		return nil, quantum.Params{}, fmt.Errorf("read pinned params: %w", err)
	}
	var params quantum.Params
	if err := json.Unmarshal(raw, &params); err != nil {
		return nil, quantum.Params{}, fmt.Errorf("parse pinned params: %w", err)
	}
	return g, params, nil
}
