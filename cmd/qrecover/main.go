// Command qrecover replays a muerpd data directory offline: it rebuilds the
// admission state from the newest snapshot plus the WAL suffix — exactly
// the recovery a daemon boot performs — then cross-checks it before anyone
// restarts on top of it.
//
// Usage:
//
//	qrecover -data-dir DIR [-json] [-at RFC3339]
//
// The topology and physical parameters are read from the files muerpd
// pinned in the directory, so no generation flags are needed. Checks:
//
//   - every recovered session's tree revalidates against the topology
//     (quantum.ValidateTree: spanning, capacity, Eq. 1 rates),
//   - re-reserving every session's channels on a fresh ledger reproduces
//     the recovered per-switch occupancy exactly,
//   - session IDs are below the recovered ID counter.
//
// Exit status 0 means the directory recovers cleanly; 1 means it does not
// (corrupt log, divergent occupancy, invalid tree). -json dumps the full
// recovered state for diffing; -at reports which sessions would already be
// expired at the given instant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qrecover:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qrecover", flag.ContinueOnError)
	var (
		dataDir  = fs.String("data-dir", "", "muerpd data directory to recover (required)")
		asJSON   = fs.Bool("json", false, "dump the recovered state as JSON")
		atFlag   = fs.String("at", "", "report expiries as of this RFC3339 instant (default: now)")
		noVerify = fs.Bool("no-verify", false, "skip the cross-checks; only replay")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	at := time.Now()
	if *atFlag != "" {
		var err error
		if at, err = time.Parse(time.RFC3339, *atFlag); err != nil {
			return fmt.Errorf("parse -at: %w", err)
		}
	}

	g, params, err := loadPinned(*dataDir)
	if err != nil {
		return err
	}
	t0 := time.Now()
	rec, err := service.Recover(*dataDir, g)
	if err != nil {
		return err
	}
	dur := time.Since(t0)

	st := rec.State
	used := 0
	for _, id := range g.Switches() {
		used += g.Node(id).Qubits - st.Ledger.Free[id]
	}
	expired := 0
	for _, ss := range st.Sessions {
		if !ss.Info.ExpiresAt.After(at) {
			expired++
		}
	}
	fmt.Fprintf(out, "recovered %s in %v\n", *dataDir, dur.Round(time.Microsecond))
	if rec.SnapshotPath != "" {
		fmt.Fprintf(out, "  snapshot:  %s (covers %d records)\n", rec.SnapshotPath, rec.SnapshotSeq)
	} else {
		fmt.Fprintf(out, "  snapshot:  none (full WAL replay)\n")
	}
	fmt.Fprintf(out, "  wal:       %d records replayed, next seq %d\n", rec.WALRecords, rec.NextSeq)
	fmt.Fprintf(out, "  sessions:  %d live (%d already expired at %s)\n", len(st.Sessions), expired, at.Format(time.RFC3339))
	fmt.Fprintf(out, "  ledger:    %d qubits reserved, closure gen %d (%d closed)\n", used, st.Ledger.Gen, len(st.Ledger.Closed))

	if !*noVerify {
		if err := service.VerifyState(g, params, st); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintf(out, "  verify:    trees valid, occupancy matches, IDs consistent\n")
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	return nil
}

// loadPinned reads the topology and parameters muerpd stored alongside the
// WAL, so the tool replays against exactly the environment that wrote it.
func loadPinned(dataDir string) (*graph.Graph, quantum.Params, error) {
	f, err := os.Open(service.TopologyPath(dataDir))
	if err != nil {
		return nil, quantum.Params{}, fmt.Errorf("no pinned topology (is this a muerpd -data-dir?): %w", err)
	}
	defer func() { _ = f.Close() }()
	g, err := graph.ReadJSON(f)
	if err != nil {
		return nil, quantum.Params{}, fmt.Errorf("read pinned topology: %w", err)
	}
	raw, err := os.ReadFile(service.ParamsPath(dataDir))
	if err != nil {
		return nil, quantum.Params{}, fmt.Errorf("read pinned params: %w", err)
	}
	var params quantum.Params
	if err := json.Unmarshal(raw, &params); err != nil {
		return nil, quantum.Params{}, fmt.Errorf("parse pinned params: %w", err)
	}
	return g, params, nil
}
