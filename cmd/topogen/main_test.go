package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	err := run(args, &buf)
	return buf.String(), err
}

func TestGenerateJSONOutput(t *testing.T) {
	out, err := capture(t, "-users", "4", "-switches", "8", "-seed", "2")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := graph.ReadJSON(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output is not a valid topology: %v", err)
	}
	if len(g.Users()) != 4 || len(g.Switches()) != 8 {
		t.Fatalf("decoded %s, want 4 users / 8 switches", g)
	}
}

func TestGenerateToFileAndInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	if _, err := capture(t, "-users", "3", "-switches", "6", "-out", path); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("output file missing: %v", err)
	}
	out, err := capture(t, "-in", path, "-stats")
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	for _, want := range []string{"3 users", "6 switches", "connected:", "average degree:", "components:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateExactEdges(t *testing.T) {
	out, err := capture(t, "-users", "5", "-switches", "20", "-edges", "90", "-stats")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "edges)") {
		t.Fatalf("no edge count in stats:\n%s", out)
	}
}

func TestRejects(t *testing.T) {
	tests := [][]string{
		{"-model", "bogus"},
		{"-users", "0"},
		{"-in", "/nonexistent.json"},
	}
	for _, args := range tests {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
