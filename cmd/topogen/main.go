// Command topogen generates random quantum-network topologies as JSON, or
// inspects an existing topology file.
//
// Usage:
//
//	topogen [flags]                 generate and print/write JSON
//	topogen -in net.json -stats    print structural statistics instead
//
//	-model    waxman | watts-strogatz | volchenkov
//	-users    number of users       (default 10)
//	-switches number of switches    (default 50)
//	-degree   average node degree   (default 6)
//	-edges    exact fiber count (overrides -degree when > 0)
//	-qubits   qubits per switch     (default 4)
//	-seed     RNG seed              (default 1)
//	-out      output file (default stdout)
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		model    = fs.String("model", "waxman", "topology model")
		users    = fs.Int("users", 10, "number of users")
		switches = fs.Int("switches", 50, "number of switches")
		degree   = fs.Float64("degree", 6, "average node degree")
		edges    = fs.Int("edges", 0, "exact fiber count (overrides -degree when > 0)")
		qubits   = fs.Int("qubits", 4, "qubits per switch")
		seed     = fs.Int64("seed", 1, "RNG seed")
		outFile  = fs.String("out", "", "output file (default stdout)")
		inFile   = fs.String("in", "", "inspect an existing topology JSON")
		stats    = fs.Bool("stats", false, "print statistics instead of JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if g, err = graph.ReadJSON(f); err != nil {
			return err
		}
	} else {
		m, err := topology.ParseModel(*model)
		if err != nil {
			return err
		}
		cfg := topology.Default()
		cfg.Model = m
		cfg.Users = *users
		cfg.Switches = *switches
		cfg.AvgDegree = *degree
		cfg.ExactEdges = *edges
		cfg.SwitchQubits = *qubits
		if g, err = topology.Generate(cfg, rand.New(rand.NewSource(*seed))); err != nil {
			return err
		}
	}

	if *stats {
		printStats(stdout, g)
		return nil
	}

	w := stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	return g.WriteJSON(w)
}

// printStats summarizes a topology: counts, degree distribution, fiber
// length quartiles and connectivity.
func printStats(w io.Writer, g *graph.Graph) {
	fmt.Fprintln(w, g)
	fmt.Fprintf(w, "connected:       %v\n", g.Connected())
	fmt.Fprintf(w, "users connected: %v\n", g.UsersConnected())
	fmt.Fprintf(w, "average degree:  %.2f\n", g.AverageDegree())

	degrees := make([]int, g.NumNodes())
	for i := range degrees {
		degrees[i] = g.Degree(graph.NodeID(i))
	}
	sort.Ints(degrees)
	if len(degrees) > 0 {
		fmt.Fprintf(w, "degree min/med/max: %d / %d / %d\n",
			degrees[0], degrees[len(degrees)/2], degrees[len(degrees)-1])
	}

	lengths := make([]float64, 0, g.NumEdges())
	for _, e := range g.Edges() {
		lengths = append(lengths, e.Length)
	}
	sort.Float64s(lengths)
	if len(lengths) > 0 {
		fmt.Fprintf(w, "fiber km min/med/max: %.0f / %.0f / %.0f\n",
			lengths[0], lengths[len(lengths)/2], lengths[len(lengths)-1])
	}
	comps := g.Components()
	fmt.Fprintf(w, "components:      %d\n", len(comps))
}
