package main

import (
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	err := run(args, &buf)
	return buf.String(), err
}

func TestRunInMemory(t *testing.T) {
	out, err := capture(t, "-users", "4", "-switches", "10", "-rounds", "200", "-seed", "3")
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{
		"algorithm:        alg3 over mem transport",
		"rounds executed:  200",
		"empirical rate:",
		"analytic rate:",
		"channel 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOverTCP(t *testing.T) {
	out, err := capture(t, "-users", "3", "-switches", "8", "-rounds", "50", "-transport", "tcp")
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "tcp hub listening on 127.0.0.1:") {
		t.Errorf("no hub line:\n%s", out)
	}
	if !strings.Contains(out, "over tcp transport") {
		t.Errorf("no tcp transport line:\n%s", out)
	}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, alg := range []string{"alg2", "alg3", "alg4", "eqcast", "nfusion"} {
		t.Run(alg, func(t *testing.T) {
			out, err := capture(t, "-users", "3", "-switches", "8", "-rounds", "20", "-alg", alg)
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if !strings.Contains(out, "algorithm:        "+alg) {
				t.Errorf("output missing algorithm %s:\n%s", alg, out)
			}
		})
	}
}

func TestRejects(t *testing.T) {
	tests := [][]string{
		{"-alg", "bogus"},
		{"-transport", "carrier-pigeon"},
		{"-model", "bogus"},
		{"-rounds", "0"},
	}
	for _, args := range tests {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := capture(t, "-version")
	if err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.Contains(out, "quantumnet") || !strings.Contains(out, "go1.") {
		t.Fatalf("version output: %q", out)
	}
}

func TestStatsFlag(t *testing.T) {
	out, err := capture(t, "-users", "4", "-switches", "10", "-rounds", "50", "-seed", "3", "-stats")
	if err != nil {
		t.Fatalf("run -stats: %v\n%s", err, out)
	}
	if !strings.Contains(out, "solve work:") || !strings.Contains(out, "dijkstra") {
		t.Errorf("output missing solve-work counters:\n%s", out)
	}
	if strings.Contains(out, "dijkstra=0 ") {
		t.Errorf("stats sink recorded no dijkstra runs:\n%s", out)
	}
}
