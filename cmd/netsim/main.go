// Command netsim runs the paper's §II-B distributed entanglement process
// end to end: every user and switch of a generated network runs as its own
// goroutine; users send entanglement requests to a central controller,
// which routes them with a chosen algorithm, disseminates the plan over a
// message plane (in-memory channels or real TCP loopback sockets), and
// drives synchronized entanglement rounds.
//
// Usage:
//
//	netsim [flags]
//
//	-model/-users/-switches/-degree/-qubits/-seed  as in cmd/muerp
//	-alg        routing algorithm (default alg3)
//	-rounds     synchronized entanglement rounds (default 10000)
//	-transport  mem | tcp (default mem)
//	-parallel   OS-thread cap for the node goroutines (default all CPUs)
//	-stats      print the controller's solve-work counters
//	-version    print build info and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	goruntime "runtime"
	"time"

	"github.com/muerp/quantumnet/internal/buildinfo"
	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/runtime"
	"github.com/muerp/quantumnet/internal/solver"
	"github.com/muerp/quantumnet/internal/topology"
	"github.com/muerp/quantumnet/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("netsim", flag.ContinueOnError)
	var (
		model    = fs.String("model", "waxman", "topology model")
		users    = fs.Int("users", 6, "number of users")
		switches = fs.Int("switches", 20, "number of switches")
		degree   = fs.Float64("degree", 6, "average node degree")
		qubits   = fs.Int("qubits", 4, "qubits per switch")
		seed     = fs.Int64("seed", 1, "RNG seed")
		alg      = fs.String("alg", "alg3", "routing algorithm")
		rounds   = fs.Int("rounds", 10000, "entanglement rounds")
		transp   = fs.String("transport", "mem", "message plane: mem or tcp")
		timeout  = fs.Duration("timeout", 2*time.Minute, "execution timeout")
		parallel = fs.Int("parallel", goruntime.GOMAXPROCS(0), "OS-thread cap for the node goroutines")
		stats    = fs.Bool("stats", false, "print the controller's solve-work counters")
		version  = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String())
		return nil
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}
	// Every node runs as a goroutine, so the knob is the scheduler's thread
	// cap rather than a worker pool size.
	goruntime.GOMAXPROCS(*parallel)

	m, err := topology.ParseModel(*model)
	if err != nil {
		return err
	}
	cfg := topology.Default()
	cfg.Model = m
	cfg.Users = *users
	cfg.Switches = *switches
	cfg.AvgDegree = *degree
	cfg.SwitchQubits = *qubits
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, g)

	solver, err := pickSolver(*alg, *seed)
	if err != nil {
		return err
	}
	// The controller calls the solver through runtime.Run, which has no
	// stats plumbing of its own — so -stats wraps the solver with a sink
	// that every solve (there may be retries) accumulates into.
	var work core.SolveStats
	if *stats {
		solver = withStatsSink(solver, &work)
	}

	var net transport.Network
	switch *transp {
	case "mem":
		mem := transport.NewInMemory()
		defer func() { _ = mem.Close() }()
		net = mem
	case "tcp":
		hub, err := transport.NewTCPHub("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer func() { _ = hub.Close() }()
		fmt.Fprintf(out, "tcp hub listening on %s\n", hub.Addr())
		tcp := transport.NewTCPNetwork(hub.Addr())
		defer func() { _ = tcp.Close() }()
		net = tcp
	default:
		return fmt.Errorf("unknown transport %q (want mem or tcp)", *transp)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	report, err := runtime.Run(ctx, net, g, runtime.Config{
		Solver: solver,
		Params: quantum.DefaultParams(),
		Rounds: *rounds,
		Seed:   *seed,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(out, "algorithm:        %s over %s transport\n", solver.Name(), *transp)
	fmt.Fprintf(out, "channels routed:  %d\n", len(report.Solution.Tree.Channels))
	fmt.Fprintf(out, "rounds executed:  %d in %v\n", report.Rounds, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "tree successes:   %d\n", report.Successes)
	fmt.Fprintf(out, "empirical rate:   %.6e\n", report.EmpiricalRate())
	fmt.Fprintf(out, "analytic rate:    %.6e\n", report.AnalyticRate())
	fmt.Fprintf(out, "links attempted:  %d\n", report.LinksAttempted)
	fmt.Fprintf(out, "swaps attempted:  %d\n", report.SwapsAttempted)
	if *stats {
		fmt.Fprintf(out, "solve work:       %s\n", work.String())
	}
	for i, cs := range report.ChannelSuccess {
		ch := report.Solution.Tree.Channels[i]
		fmt.Fprintf(out, "  channel %d (%d links): %d/%d rounds (analytic %.4f)\n",
			i, ch.Links(), cs, report.Rounds, ch.Rate)
	}
	return nil
}

// pickSolver resolves the CLI name through the solver registry. Schemes
// that consume randomness (Algorithm 4's random start) draw from a stream
// seeded with the run seed; seed 0 leaves them deterministic.
func pickSolver(alg string, seed int64) (core.Solver, error) {
	entry, err := solver.Get(alg)
	if err != nil {
		return nil, err
	}
	if !entry.ConsumesRNG || seed == 0 {
		return entry.Solver(), nil
	}
	stream := rand.New(rand.NewSource(seed))
	return core.SolverFunc{ID: entry.Name, Fn: func(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Solution, error) {
		if opts.Rand() == nil {
			opts = &core.SolveOptions{RNG: stream, Stats: opts.StatsSink()}
		}
		return entry.Solve(ctx, p, opts)
	}}, nil
}

// withStatsSink routes every solve through st unless the caller already
// supplied a sink of its own.
func withStatsSink(s core.Solver, st *core.SolveStats) core.Solver {
	return core.SolverFunc{ID: s.Name(), Fn: func(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Solution, error) {
		if opts.StatsSink() == nil {
			opts = &core.SolveOptions{RNG: opts.Rand(), Stats: st}
		}
		return s.Solve(ctx, p, opts)
	}}
}
