package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	err := run(args, &buf)
	return buf.String(), err
}

func TestRunSingleFigure(t *testing.T) {
	out, err := capture(t, "-figure", "fig8b", "-networks", "2")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"fig8b", "alg2", "nfusion", "headline improvements"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if _, err := capture(t, "-figure", "fig5", "-networks", "2", "-out", dir); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "figure,label,x,alg2_mean") {
		t.Errorf("unexpected csv header: %q", string(data[:60]))
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 { // header + 3 topologies
		t.Errorf("fig5.csv has %d lines, want 4", len(lines))
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := capture(t, "-figure", "fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestHeadlineImprovementsPositive(t *testing.T) {
	out, err := capture(t, "-figure", "fig5", "-networks", "3")
	if err != nil {
		t.Fatal(err)
	}
	// Every proposed algorithm should show a positive improvement over both
	// baselines somewhere in fig5.
	for _, alg := range []string{"alg2", "alg3", "alg4"} {
		if !strings.Contains(out, alg+" vs") {
			t.Errorf("headline missing %s:\n%s", alg, out)
		}
	}
}
