// Command experiments regenerates the paper's evaluation (Figs. 5-8):
// for each figure it sweeps the corresponding parameter over batches of
// random networks, prints the mean entanglement rate per algorithm as a
// table, and optionally writes CSVs.
//
// Usage:
//
//	experiments [flags]
//
//	-figure   all | fig5 | fig6a | fig6b | fig7a | fig7b | fig8a | fig8b
//	-networks random networks per sweep point (default 20, as in the paper)
//	-seed     base RNG seed (default 1)
//	-out      directory for CSV output (default: none)
//	-stats    also print per-algorithm solve work counters
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"github.com/muerp/quantumnet/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		figure    = fs.String("figure", "all", "which figure to regenerate")
		networks  = fs.Int("networks", 20, "random networks per sweep point")
		seed      = fs.Int64("seed", 1, "base RNG seed")
		outDir    = fs.String("out", "", "directory for CSV output")
		ablations = fs.Bool("ablations", false, "also run the ablation studies")
		gaps      = fs.Bool("gaps", false, "also run the exact-optimality gap study")
		workStats = fs.Bool("stats", false, "also print per-algorithm solve work counters")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "networks solved concurrently per sweep point")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sim.DefaultConfig()
	cfg.Networks = *networks
	cfg.Seed = *seed
	cfg.Parallelism = *parallel

	drivers := map[string]func() (sim.Series, error){
		"fig5":  func() (sim.Series, error) { return sim.Fig5(cfg) },
		"fig6a": func() (sim.Series, error) { return sim.Fig6aUsers(cfg, nil) },
		"fig6b": func() (sim.Series, error) { return sim.Fig6bSwitches(cfg, nil) },
		"fig7a": func() (sim.Series, error) { return sim.Fig7aDegree(cfg, nil) },
		"fig7b": func() (sim.Series, error) { return sim.Fig7bRemoval(cfg, 30) },
		"fig8a": func() (sim.Series, error) { return sim.Fig8aQubits(cfg, nil) },
		"fig8b": func() (sim.Series, error) { return sim.Fig8bSwapRate(cfg, nil) },
	}
	order := []string{"fig5", "fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b"}

	var selected []string
	if *figure == "all" {
		selected = order
	} else if _, ok := drivers[*figure]; ok {
		selected = []string{*figure}
	} else {
		return fmt.Errorf("unknown figure %q (want all or one of %v)", *figure, order)
	}

	var all []sim.Series
	for _, name := range selected {
		series, err := drivers[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		all = append(all, series)
		fmt.Fprintln(out, series.Table())
		if *workStats {
			fmt.Fprintln(out, series.WorkTable())
		}
		if *outDir != "" {
			if err := writeCSV(*outDir, series); err != nil {
				return err
			}
		}
	}

	printHeadline(out, all)

	if *ablations {
		series, err := sim.AllAblations(cfg)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		for _, s := range series {
			fmt.Fprintln(out, s.Table())
			if *workStats {
				fmt.Fprintln(out, s.WorkTable())
			}
			if *outDir != "" {
				if err := writeCSV(*outDir, s); err != nil {
					return err
				}
			}
		}
	}

	if *gaps {
		gapCfg := sim.DefaultGapConfig()
		gapCfg.Seed = *seed
		s, err := sim.OptimalityGaps(gapCfg)
		if err != nil {
			return fmt.Errorf("gap study: %w", err)
		}
		fmt.Fprintln(out, s.Table())
		if *outDir != "" {
			if err := writeCSV(*outDir, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCSV writes one series to <dir>/<figure>.csv.
func writeCSV(dir string, s sim.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", dir, err)
	}
	path := filepath.Join(dir, s.Figure+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	if err := s.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// printHeadline reports the paper's §V-B style maximum improvement ratios
// of the proposed algorithms over the two baselines across all regenerated
// figures.
func printHeadline(out io.Writer, all []sim.Series) {
	if len(all) == 0 {
		return
	}
	fmt.Fprintln(out, "headline improvements (max mean-rate ratio across sweep points, finite baselines only):")
	for _, alg := range []string{sim.AlgOptimal, sim.AlgConflictFree, sim.AlgPrim} {
		for _, base := range []string{sim.AlgNFusion, sim.AlgEQCast} {
			best := 0.0
			where := ""
			for _, s := range all {
				for i, r := range s.ImprovementOver(alg, base) {
					if r > best {
						best = r
						where = fmt.Sprintf("%s/%s", s.Figure, s.Points[i].Label)
					}
				}
			}
			if best > 0 {
				fmt.Fprintf(out, "  %s vs %-8s %8.0f%%  (at %s)\n", alg, base+":", (best-1)*100, where)
			}
		}
	}
}
