// Command muerpd is the online entanglement-routing daemon: it loads (or
// generates) a quantum network, owns a live capacity ledger over it, and
// serves entanglement-session requests over HTTP/JSON through a batching
// admission loop (see internal/service and DESIGN.md §6).
//
// Usage:
//
//	muerpd [flags]
//
//	-addr        listen address (default 127.0.0.1:8089; use :0 for a random port)
//	-addr-file   write the bound address to this file (for scripts/CI)
//	-model/-users/-switches/-degree/-qubits/-seed  as in cmd/muerp
//	-in          load topology JSON instead of generating
//	-q/-alpha    physical parameters as in cmd/muerp
//	-queue       admission queue bound          (default 256)
//	-batch       max admission batch size       (default 16)
//	-batch-wait  max batch fill wait            (default 2ms)
//	-workers     parallel admission solvers     (default GOMAXPROCS; >1 runs
//	             the speculative scheduler, DESIGN.md §8)
//	-ttl         default session TTL            (default 30s)
//	-max-ttl     TTL cap                        (default 10m)
//	-shards      admission shards; >1 partitions the topology into regions,
//	             runs one admission plane per region and two-phase-commits
//	             cross-region sessions (DESIGN.md §9; default 1)
//	-partition-seed  region partitioner seed    (default 1)
//	-cross-retries   cross-region re-solve budget before the global
//	             fallback (default 3)
//	-data-dir    durable state directory (WAL + snapshots); crash recovery
//	             restores every live session on restart (empty = in-memory)
//	-snapshot-every / -snapshot-interval  snapshot cadence
//	-solve-cache solve-cache entries per admission plane (0 = default 256,
//	             negative disables caching)
//	-qos-config  tenant QoS policy JSON ({"tenants":[...]}); enables the
//	             multi-tenant queue layer (DESIGN.md §11). With -data-dir the
//	             effective policy is pinned in the data directory and a
//	             restart with a different policy refuses to start. Empty =
//	             single default tenant, plain FIFO.
//	-pprof       expose net/http/pprof on this side address (e.g.
//	             127.0.0.1:6060; empty = off). The profiler listens on its
//	             own socket, never on the service API. With -addr-file the
//	             bound profiler address is written to <addr-file>.pprof.
//	             See EXPERIMENTS.md for the profiling workflow.
//	-version     print build info and exit
//
// API: POST /sessions {"users":[...],"ttl_ms":n,"tenant":"name"} → 201
// (admitted), 409 (infeasible now), 429 + Retry-After (queue full or tenant
// over quota); GET|DELETE
// /sessions/{id}; GET /metrics; GET /topology; GET /healthz. SIGTERM or
// SIGINT drains queued requests, releases the listener and exits cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the DefaultServeMux for the -pprof side listener
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/muerp/quantumnet/internal/buildinfo"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/qos"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/service"
	"github.com/muerp/quantumnet/internal/topology"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "muerpd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("muerpd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8089", "listen address (use :0 for a random port)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file")
		model     = fs.String("model", "waxman", "topology model")
		users     = fs.Int("users", 10, "number of users")
		switches  = fs.Int("switches", 30, "number of switches")
		degree    = fs.Float64("degree", 6, "average node degree")
		qubits    = fs.Int("qubits", 4, "qubits per switch")
		seed      = fs.Int64("seed", 1, "RNG seed")
		inFile    = fs.String("in", "", "load topology JSON instead of generating")
		swapProb  = fs.Float64("q", 0.9, "BSM swap success probability")
		alpha     = fs.Float64("alpha", 1e-4, "fiber attenuation per km")
		queueSize = fs.Int("queue", 256, "admission queue bound")
		batch     = fs.Int("batch", 16, "max admission batch size")
		batchWait = fs.Duration("batch-wait", 2*time.Millisecond, "max batch fill wait")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel admission solvers (>1 enables speculative admission)")
		ttl       = fs.Duration("ttl", 30*time.Second, "default session TTL")
		maxTTL    = fs.Duration("max-ttl", 10*time.Minute, "session TTL cap")
		shards    = fs.Int("shards", 1, "admission shards (>1 partitions the topology into regions)")
		partSeed  = fs.Int64("partition-seed", 1, "region partitioner seed")
		crossTry  = fs.Int("cross-retries", 3, "cross-region re-solve budget before the global fallback")
		dataDir   = fs.String("data-dir", "", "durable state directory (WAL + snapshots); empty = in-memory only")
		snapEvery = fs.Int("snapshot-every", 1024, "snapshot after this many WAL records")
		snapInt   = fs.Duration("snapshot-interval", 30*time.Second, "snapshot at least this often")
		cacheSize = fs.Int("solve-cache", 0, "solve-cache entries per admission plane (0 = default, negative disables)")
		qosFile   = fs.String("qos-config", "", "tenant QoS policy JSON (empty = single default tenant)")
		pprofAddr = fs.String("pprof", "", "expose net/http/pprof on this side address (empty = off)")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String())
		return nil
	}

	g, err := loadOrGenerate(*inFile, *model, *users, *switches, *degree, *qubits, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, g)

	var qcfg *qos.Config
	if *qosFile != "" {
		qcfg, err = qos.Load(*qosFile)
		if err != nil {
			return err
		}
	}

	base := service.Config{
		Graph:            g,
		Params:           quantum.Params{Alpha: *alpha, SwapProb: *swapProb},
		QueueSize:        *queueSize,
		MaxBatch:         *batch,
		MaxWait:          *batchWait,
		Workers:          *workers,
		DefaultTTL:       *ttl,
		MaxTTL:           *maxTTL,
		DataDir:          *dataDir,
		SnapshotEvery:    *snapEvery,
		SnapshotInterval: *snapInt,
		SolveCacheSize:   *cacheSize,
		QoS:              qcfg,
	}
	// One daemon, two shapes: the single admission plane, or -shards region
	// planes behind the cross-region router. Both serve the same API.
	var (
		handler   http.Handler
		closeSvc  func() error
		admission func() string
	)
	if *shards > 1 {
		svc, err := service.NewSharded(service.ShardedConfig{
			Config:        base,
			Shards:        *shards,
			PartitionSeed: *partSeed,
			CrossRetries:  *crossTry,
		})
		if err != nil {
			return err
		}
		part := svc.Partition()
		fmt.Fprintf(out, "partitioned into %d regions (seed=%d boundary=%d cut=%d)\n",
			part.K, part.Seed, len(part.Boundary), part.CutEdges)
		handler = svc.Handler()
		closeSvc = svc.Close
		admission = func() string { return svc.Metrics().Admission.String() }
	} else {
		svc, err := service.New(base)
		if err != nil {
			return err
		}
		handler = svc.Handler()
		closeSvc = svc.Close
		admission = func() string { return svc.Metrics().Admission.String() }
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = closeSvc()
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := writeFileAtomic(*addrFile, []byte(bound)); err != nil {
			_ = ln.Close()
			_ = closeSvc()
			return fmt.Errorf("write addr file: %w", err)
		}
	}
	// The profiler gets its own socket so /debug/pprof/ never leaks onto the
	// service API; the blank net/http/pprof import put its handlers on the
	// DefaultServeMux, which only this listener serves.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			_ = ln.Close()
			_ = closeSvc()
			return fmt.Errorf("pprof listen: %w", err)
		}
		defer func() { _ = pln.Close() }()
		if *addrFile != "" {
			if err := writeFileAtomic(*addrFile+".pprof", []byte(pln.Addr().String())); err != nil {
				_ = ln.Close()
				_ = closeSvc()
				return fmt.Errorf("write pprof addr file: %w", err)
			}
		}
		go func() { _ = http.Serve(pln, nil) }()
		fmt.Fprintf(out, "pprof listening on http://%s/debug/pprof/\n", pln.Addr())
	}
	// One structured line with the effective configuration — everything the
	// daemon actually runs with, after defaulting. Scripts and log scrapers
	// match the "muerpd config " prefix and parse the JSON tail.
	scheduler := service.SchedulerSerial
	if *workers > 1 {
		scheduler = service.SchedulerSpeculative
	}
	tenants := 0
	if qcfg != nil {
		tenants = len(qcfg.Normalized().Tenants)
	}
	eff, err := json.Marshal(struct {
		Addr       string        `json:"addr"`
		Scheduler  string        `json:"scheduler"`
		Workers    int           `json:"workers"`
		Shards     int           `json:"shards"`
		Queue      int           `json:"queue"`
		Batch      int           `json:"batch"`
		BatchWait  time.Duration `json:"batch_wait_ns"`
		TTL        time.Duration `json:"ttl_ns"`
		MaxTTL     time.Duration `json:"max_ttl_ns"`
		DataDir    string        `json:"data_dir,omitempty"`
		SnapEvery  int           `json:"snapshot_every,omitempty"`
		SolveCache int           `json:"solve_cache"`
		QoSConfig  string        `json:"qos_config,omitempty"`
		Tenants    int           `json:"tenants,omitempty"`
		Pprof      bool          `json:"pprof,omitempty"`
	}{
		Addr: bound, Scheduler: scheduler, Workers: *workers, Shards: *shards,
		Queue: *queueSize, Batch: *batch, BatchWait: *batchWait,
		TTL: *ttl, MaxTTL: *maxTTL, DataDir: *dataDir, SnapEvery: *snapEvery,
		SolveCache: *cacheSize, QoSConfig: *qosFile, Tenants: tenants,
		Pprof: *pprofAddr != "",
	})
	if err != nil {
		_ = ln.Close()
		_ = closeSvc()
		return err
	}
	fmt.Fprintf(out, "muerpd config %s\n", eff)
	fmt.Fprintf(out, "muerpd listening on http://%s (batch<=%d wait=%v queue=%d ttl=%v workers=%d shards=%d tenants=%d)\n",
		bound, *batch, *batchWait, *queueSize, *ttl, *workers, *shards, tenants)

	srv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		_ = closeSvc()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop the listener, finish in-flight HTTP exchanges,
	// then let the service decide everything still queued.
	fmt.Fprintln(out, "muerpd: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := closeSvc(); err != nil {
		return err
	}
	fmt.Fprintf(out, "final admission summary:\n%s", admission())
	return nil
}

// writeFileAtomic stages the content next to path and renames it into
// place, so a watcher polling the file (scripts/CI reading the bound
// address) never reads a half-written value.
func writeFileAtomic(path string, content []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, content, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

func loadOrGenerate(inFile, model string, users, switches int, degree float64, qubits int, seed int64) (*graph.Graph, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		return graph.ReadJSON(f)
	}
	m, err := topology.ParseModel(model)
	if err != nil {
		return nil, err
	}
	cfg := topology.Default()
	cfg.Model = m
	cfg.Users = users
	cfg.Switches = switches
	cfg.AvgDegree = degree
	cfg.SwitchQubits = qubits
	return topology.Generate(cfg, rand.New(rand.NewSource(seed)))
}
