package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
)

func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.Contains(buf.String(), "quantumnet") || !strings.Contains(buf.String(), "go1.") {
		t.Fatalf("version output: %q", buf.String())
	}
}

func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "bogus"},
		{"-users", "1"},
		{"-q", "7"},
		{"-addr", "127.0.0.1:0", "-in", "/does/not/exist.json"},
	} {
		var buf strings.Builder
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestServeAndGracefulShutdown boots the daemon on a random port, drives
// one admission round trip over real HTTP, then cancels the context (the
// signal path) and requires a clean drain with a final summary.
func TestServeAndGracefulShutdown(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-users", "6", "-switches", "12", "-ttl", "500ms",
		}, &buf)
	}()

	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote its address; output:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	_ = resp.Body.Close()

	// User IDs are shuffled across the generated topology; discover them.
	topoResp, err := http.Get(base + "/topology")
	if err != nil {
		t.Fatalf("GET /topology: %v", err)
	}
	g, err := graph.ReadJSON(topoResp.Body)
	_ = topoResp.Body.Close()
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	users := g.Users()
	if len(users) < 2 {
		t.Fatalf("topology has %d users", len(users))
	}

	body, err := json.Marshal(map[string]interface{}{
		"users":  users[:2],
		"ttl_ms": 200,
	})
	if err != nil {
		t.Fatalf("marshal body: %v", err)
	}
	resp, err = http.Post(base+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sessions: %v", err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var created struct {
		ID string `json:"id"`
	}
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatalf("decode session: %v", err)
		}
	}
	_ = resp.Body.Close()

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var m struct {
		Requests struct {
			Total int64 `json:"total"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	_ = resp.Body.Close()
	if m.Requests.Total == 0 {
		t.Fatal("metrics saw no requests")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down within 10s; output:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "final admission summary:") ||
		!strings.Contains(buf.String(), "acceptance ratio:") {
		t.Fatalf("missing final summary:\n%s", buf.String())
	}
}

// -pprof must serve the profiler on its own listener and keep it off the
// service API surface.
func TestPprofSideListener(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-pprof", "127.0.0.1:0",
			"-users", "6", "-switches", "12",
		}, &buf)
	}()

	readAddr := func(path string) string {
		deadline := time.Now().Add(15 * time.Second)
		for {
			if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
				return string(b)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never appeared", path)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	apiAddr := readAddr(addrFile)
	pprofAddr := readAddr(addrFile + ".pprof")

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof cmdline: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}

	resp, err = http.Get("http://" + apiAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET service /debug/pprof/: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("profiler leaked onto the service API listener")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down within 10s; output:\n%s", buf.String())
	}
}
