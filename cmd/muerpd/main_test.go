package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/graph"
)

func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.Contains(buf.String(), "quantumnet") || !strings.Contains(buf.String(), "go1.") {
		t.Fatalf("version output: %q", buf.String())
	}
}

func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "bogus"},
		{"-users", "1"},
		{"-q", "7"},
		{"-addr", "127.0.0.1:0", "-in", "/does/not/exist.json"},
	} {
		var buf strings.Builder
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestServeAndGracefulShutdown boots the daemon on a random port, drives
// one admission round trip over real HTTP, then cancels the context (the
// signal path) and requires a clean drain with a final summary.
func TestServeAndGracefulShutdown(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-users", "6", "-switches", "12", "-ttl", "500ms",
		}, &buf)
	}()

	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote its address; output:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	_ = resp.Body.Close()

	// User IDs are shuffled across the generated topology; discover them.
	topoResp, err := http.Get(base + "/topology")
	if err != nil {
		t.Fatalf("GET /topology: %v", err)
	}
	g, err := graph.ReadJSON(topoResp.Body)
	_ = topoResp.Body.Close()
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	users := g.Users()
	if len(users) < 2 {
		t.Fatalf("topology has %d users", len(users))
	}

	body, err := json.Marshal(map[string]interface{}{
		"users":  users[:2],
		"ttl_ms": 200,
	})
	if err != nil {
		t.Fatalf("marshal body: %v", err)
	}
	resp, err = http.Post(base+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sessions: %v", err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var created struct {
		ID string `json:"id"`
	}
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatalf("decode session: %v", err)
		}
	}
	_ = resp.Body.Close()

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var m struct {
		Requests struct {
			Total int64 `json:"total"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	_ = resp.Body.Close()
	if m.Requests.Total == 0 {
		t.Fatal("metrics saw no requests")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down within 10s; output:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "final admission summary:") ||
		!strings.Contains(buf.String(), "acceptance ratio:") {
		t.Fatalf("missing final summary:\n%s", buf.String())
	}
}

// TestQoSConfigStartup boots the daemon with a tenant policy file, checks
// the structured "muerpd config" line reports the effective configuration,
// and drives a tenant-tagged session whose identity shows up in /metrics.
func TestQoSConfigStartup(t *testing.T) {
	dir := t.TempDir()
	qosFile := filepath.Join(dir, "tenants.json")
	policy := `{"tenants":[{"id":"gold","weight":3,"priority":1},{"id":"bronze"}]}`
	if err := os.WriteFile(qosFile, []byte(policy), 0o644); err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-qos-config", qosFile,
			"-users", "6", "-switches", "12",
		}, &buf)
	}()

	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote its address; output:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	// The structured config line: a JSON object after a fixed prefix,
	// reflecting the normalized tenant count (gold, bronze + default).
	var cfgLine string
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "muerpd config "); ok {
			cfgLine = rest
			break
		}
	}
	if cfgLine == "" {
		t.Fatalf("no structured config line in output:\n%s", buf.String())
	}
	var eff struct {
		Addr      string `json:"addr"`
		Scheduler string `json:"scheduler"`
		Tenants   int    `json:"tenants"`
		QoSConfig string `json:"qos_config"`
	}
	if err := json.Unmarshal([]byte(cfgLine), &eff); err != nil {
		t.Fatalf("config line is not JSON: %v\n%s", err, cfgLine)
	}
	if eff.Addr != addr || eff.Tenants != 3 || eff.QoSConfig != qosFile || eff.Scheduler == "" {
		t.Fatalf("config line fields: %+v", eff)
	}

	topoResp, err := http.Get(base + "/topology")
	if err != nil {
		t.Fatalf("GET /topology: %v", err)
	}
	g, err := graph.ReadJSON(topoResp.Body)
	_ = topoResp.Body.Close()
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	users := g.Users()
	body, _ := json.Marshal(map[string]interface{}{
		"users": users[:2], "ttl_ms": 60000, "tenant": "gold",
	})
	resp, err := http.Post(base+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sessions: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var m struct {
		Tenants []struct {
			ID       string `json:"id"`
			Accepted int64  `json:"accepted"`
			Rejected int64  `json:"rejected"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	_ = resp.Body.Close()
	var sawGold bool
	for _, tm := range m.Tenants {
		if tm.ID == "gold" && tm.Accepted+tm.Rejected == 1 {
			sawGold = true
		}
	}
	if !sawGold {
		t.Fatalf("gold tenant missing from /metrics tenants: %+v", m.Tenants)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down within 10s; output:\n%s", buf.String())
	}

	// A bad policy file must refuse to start.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tenants":[{"id":""}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var errBuf strings.Builder
	if err := run(context.Background(), []string{
		"-addr", "127.0.0.1:0", "-qos-config", bad, "-users", "6", "-switches", "12",
	}, &errBuf); err == nil {
		t.Fatal("daemon started with an invalid qos config")
	}
}

// -pprof must serve the profiler on its own listener and keep it off the
// service API surface.
func TestPprofSideListener(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-pprof", "127.0.0.1:0",
			"-users", "6", "-switches", "12",
		}, &buf)
	}()

	readAddr := func(path string) string {
		deadline := time.Now().Add(15 * time.Second)
		for {
			if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
				return string(b)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never appeared", path)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	apiAddr := readAddr(addrFile)
	pprofAddr := readAddr(addrFile + ".pprof")

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof cmdline: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}

	resp, err = http.Get("http://" + apiAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET service /debug/pprof/: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("profiler leaked onto the service API listener")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down within 10s; output:\n%s", buf.String())
	}
}
