package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// daemon is one muerpd process under test control.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	out  *bytes.Buffer
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "muerpd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	var out bytes.Buffer
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return &daemon{cmd: cmd, base: "http://" + string(b), out: &out}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote its address; output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill sends SIGKILL — no drain, no final snapshot; recovery must come from
// the WAL alone.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = d.cmd.Process.Wait()
}

type metricsDoc struct {
	Sessions struct {
		Active int `json:"active"`
	} `json:"sessions"`
	Ledger struct {
		UsedQubits int `json:"used_qubits"`
	} `json:"ledger"`
	Durability *struct {
		Recovery struct {
			WALRecords int64 `json:"wal_records"`
			Sessions   int   `json:"sessions"`
		} `json:"recovery"`
	} `json:"durability"`
}

func getMetrics(t *testing.T, base string) metricsDoc {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var m metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return m
}

// TestCrashRecovery is the end-to-end durability check on the real binary:
// admit ~20 long-TTL sessions over HTTP, SIGKILL the process, restart it on
// the same data directory, and require every admitted session to be
// queryable again with identical ledger occupancy.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	topoArgs := []string{"-users", "10", "-switches", "30", "-seed", "3", "-data-dir", dataDir}

	d1 := startDaemon(t, bin, topoArgs...)

	// Discover user IDs from the served topology.
	resp, err := http.Get(d1.base + "/topology")
	if err != nil {
		t.Fatalf("GET /topology: %v", err)
	}
	var topo struct {
		Nodes []struct {
			Kind string `json:"kind"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatalf("decode topology: %v", err)
	}
	_ = resp.Body.Close()
	var users []int // node IDs are positions in the nodes array
	for id, n := range topo.Nodes {
		if n.Kind == "user" {
			users = append(users, id)
		}
	}
	if len(users) < 2 {
		t.Fatalf("topology has %d users", len(users))
	}

	// Admit sessions two users at a time until 20 hold capacity; TTLs far
	// exceed the test so none expires before the comparison.
	admitted := make(map[string]bool)
	for i := 0; len(admitted) < 20 && i < 200; i++ {
		pair := []int{users[i%len(users)], users[(i+1+i/len(users))%len(users)]}
		if pair[0] == pair[1] {
			continue
		}
		body, _ := json.Marshal(map[string]interface{}{"users": pair, "ttl_ms": 300000})
		resp, err := http.Post(d1.base+"/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /sessions: %v", err)
		}
		if resp.StatusCode == http.StatusCreated {
			var created struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
				t.Fatalf("decode session: %v", err)
			}
			admitted[created.ID] = true
		}
		_ = resp.Body.Close()
	}
	if len(admitted) < 20 {
		t.Fatalf("only %d sessions admitted; topology too tight for the test", len(admitted))
	}
	before := getMetrics(t, d1.base)
	if before.Sessions.Active != len(admitted) {
		t.Fatalf("daemon reports %d active sessions, admitted %d", before.Sessions.Active, len(admitted))
	}

	d1.kill(t)

	// Same binary, same data dir, same topology flags (the pinned topology
	// guards against drift).
	d2 := startDaemon(t, bin, topoArgs...)
	after := getMetrics(t, d2.base)
	if after.Durability == nil {
		t.Fatal("restarted daemon reports no durability section")
	}
	if after.Durability.Recovery.Sessions != len(admitted) || after.Durability.Recovery.WALRecords == 0 {
		t.Fatalf("recovery metrics %+v, want %d sessions from a WAL replay", after.Durability.Recovery, len(admitted))
	}
	if after.Sessions.Active != before.Sessions.Active {
		t.Fatalf("active sessions: %d before crash, %d after recovery", before.Sessions.Active, after.Sessions.Active)
	}
	if after.Ledger.UsedQubits != before.Ledger.UsedQubits {
		t.Fatalf("ledger occupancy: %d qubits before crash, %d after recovery", before.Ledger.UsedQubits, after.Ledger.UsedQubits)
	}
	for id := range admitted {
		resp, err := http.Get(fmt.Sprintf("%s/sessions/%s", d2.base, id))
		if err != nil {
			t.Fatalf("GET /sessions/%s: %v", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s lost across crash: status %d", id, resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
}

// TestShardedCrashRecovery reruns the crash differential against a sharded
// daemon: sessions admitted through the region router (some of them
// two-phase cross-region commits) must survive a SIGKILL via the per-shard
// WAL streams, with identical active-session count and ledger occupancy
// after the restart.
func TestShardedCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	topoArgs := []string{"-users", "10", "-switches", "30", "-seed", "3",
		"-data-dir", dataDir, "-shards", "2", "-partition-seed", "3"}

	d1 := startDaemon(t, bin, topoArgs...)

	resp, err := http.Get(d1.base + "/partition")
	if err != nil {
		t.Fatalf("GET /partition: %v", err)
	}
	var part struct {
		K      int   `json:"k"`
		Region []int `json:"region"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&part); err != nil {
		t.Fatalf("decode partition: %v", err)
	}
	_ = resp.Body.Close()
	if part.K != 2 || len(part.Region) == 0 {
		t.Fatalf("partition document %+v", part)
	}

	resp, err = http.Get(d1.base + "/topology")
	if err != nil {
		t.Fatalf("GET /topology: %v", err)
	}
	var topo struct {
		Nodes []struct {
			Kind string `json:"kind"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatalf("decode topology: %v", err)
	}
	_ = resp.Body.Close()
	var users []int
	for id, n := range topo.Nodes {
		if n.Kind == "user" {
			users = append(users, id)
		}
	}
	if len(users) < 2 {
		t.Fatalf("topology has %d users", len(users))
	}

	admitted := make(map[string]bool)
	cross := 0
	for i := 0; len(admitted) < 15 && i < 200; i++ {
		pair := []int{users[i%len(users)], users[(i+1+i/len(users))%len(users)]}
		if pair[0] == pair[1] {
			continue
		}
		body, _ := json.Marshal(map[string]interface{}{"users": pair, "ttl_ms": 300000})
		resp, err := http.Post(d1.base+"/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /sessions: %v", err)
		}
		if resp.StatusCode == http.StatusCreated {
			var created struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
				t.Fatalf("decode session: %v", err)
			}
			admitted[created.ID] = true
			if part.Region[pair[0]] != part.Region[pair[1]] {
				cross++
			}
		}
		_ = resp.Body.Close()
	}
	if len(admitted) < 15 {
		t.Fatalf("only %d sessions admitted; topology too tight for the test", len(admitted))
	}
	if cross == 0 {
		t.Fatal("no cross-region session admitted; the trace does not exercise two-phase commit")
	}
	before := getMetrics(t, d1.base)
	if before.Sessions.Active != len(admitted) {
		t.Fatalf("daemon reports %d active sessions, admitted %d", before.Sessions.Active, len(admitted))
	}

	d1.kill(t)

	d2 := startDaemon(t, bin, topoArgs...)
	after := getMetrics(t, d2.base)
	if after.Durability == nil {
		t.Fatal("restarted daemon reports no durability section")
	}
	// Recovery.Sessions sums per-shard recoveries, so cross-region sessions
	// (one copy per involved shard) count once per copy.
	if after.Durability.Recovery.Sessions < len(admitted) || after.Durability.Recovery.WALRecords == 0 {
		t.Fatalf("recovery metrics %+v, want >=%d session copies from WAL replays", after.Durability.Recovery, len(admitted))
	}
	if after.Sessions.Active != before.Sessions.Active {
		t.Fatalf("active sessions: %d before crash, %d after recovery", before.Sessions.Active, after.Sessions.Active)
	}
	if after.Ledger.UsedQubits != before.Ledger.UsedQubits {
		t.Fatalf("ledger occupancy: %d qubits before crash, %d after recovery", before.Ledger.UsedQubits, after.Ledger.UsedQubits)
	}
	for id := range admitted {
		resp, err := http.Get(fmt.Sprintf("%s/sessions/%s", d2.base, id))
		if err != nil {
			t.Fatalf("GET /sessions/%s: %v", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s lost across crash: status %d", id, resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
}
