// Command qsched runs the network as a service: it generates (or loads) a
// quantum network, draws a random stream of timed entanglement-session
// requests, and simulates dynamic admission — each accepted session holds
// its routed tree's switch qubits for its duration; requests that do not
// fit the residual capacity are rejected.
//
// Usage:
//
//	qsched [flags]
//
//	-model/-users/-switches/-degree/-qubits/-seed  as in cmd/muerp
//	-sessions       number of requests             (default 200)
//	-interarrival   mean inter-arrival time        (default 1)
//	-hold           mean session duration          (default 8)
//	-group-min/max  session size bounds            (default 2..4)
//	-v              print every outcome
//	-json           print the summary as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qsched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qsched", flag.ContinueOnError)
	var (
		model    = fs.String("model", "waxman", "topology model")
		users    = fs.Int("users", 10, "number of users")
		switches = fs.Int("switches", 30, "number of switches")
		degree   = fs.Float64("degree", 6, "average node degree")
		qubits   = fs.Int("qubits", 4, "qubits per switch")
		seed     = fs.Int64("seed", 1, "RNG seed")
		sessions = fs.Int("sessions", 200, "number of session requests")
		inter    = fs.Float64("interarrival", 1, "mean inter-arrival time")
		hold     = fs.Float64("hold", 8, "mean session duration")
		groupMin = fs.Int("group-min", 2, "minimum users per session")
		groupMax = fs.Int("group-max", 4, "maximum users per session")
		verbose  = fs.Bool("v", false, "print every outcome")
		jsonOut  = fs.Bool("json", false, "print the summary as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := topology.ParseModel(*model)
	if err != nil {
		return err
	}
	cfg := topology.Default()
	cfg.Model = m
	cfg.Users = *users
	cfg.Switches = *switches
	cfg.AvgDegree = *degree
	cfg.SwitchQubits = *qubits
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, g)

	w := sched.Workload{
		Requests:         *sessions,
		MeanInterarrival: *inter,
		MeanHold:         *hold,
		MinUsers:         *groupMin,
		MaxUsers:         *groupMax,
	}
	requests, err := w.Generate(g, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		return err
	}
	report, err := sched.Simulate(g, requests, quantum.DefaultParams())
	if err != nil {
		return err
	}

	if *verbose {
		for _, o := range report.Outcomes {
			if o.Accepted {
				fmt.Fprintf(out, "  t=%8.2f session %3d (%d users): accepted, rate %.4e\n",
					o.Request.Arrival, o.Request.ID, len(o.Request.Users), o.Rate)
			} else {
				fmt.Fprintf(out, "  t=%8.2f session %3d (%d users): REJECTED (%s)\n",
					o.Request.Arrival, o.Request.ID, len(o.Request.Users), o.Reason)
			}
		}
	}
	// The summary block is the shared sched.Summary representation — the
	// same one muerpd's /metrics embeds.
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Fprint(out, report)
	return nil
}
