package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	err := run(args, &buf)
	return buf.String(), err
}

func TestRunDefaultsSmall(t *testing.T) {
	out, err := capture(t, "-users", "6", "-switches", "12", "-sessions", "40")
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{
		"sessions:          40",
		"accepted:",
		"rejected:",
		"acceptance ratio:",
		"peak qubits held:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVerboseOutcomes(t *testing.T) {
	out, err := capture(t, "-users", "6", "-switches", "12", "-sessions", "10", "-v")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "session") {
		t.Errorf("verbose output missing per-session lines:\n%s", out)
	}
}

func TestRunSaturationRejectsSome(t *testing.T) {
	// Long holds on a small network must reject part of the stream.
	out, err := capture(t, "-users", "6", "-switches", "8", "-qubits", "2",
		"-sessions", "60", "-hold", "1000")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out, "rejected:          0\n") {
		t.Errorf("saturated network rejected nothing:\n%s", out)
	}
}

func TestRunRejects(t *testing.T) {
	tests := [][]string{
		{"-model", "bogus"},
		{"-sessions", "0"},
		{"-group-min", "1"},
		{"-group-max", "99"},
		{"-interarrival", "0"},
	}
	for _, args := range tests {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunJSONSummary(t *testing.T) {
	out, err := capture(t, "-users", "6", "-switches", "12", "-sessions", "20", "-json")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The JSON summary follows the topology banner; find the object start.
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var sum struct {
		Sessions int `json:"sessions"`
		Work     struct {
			DijkstraRuns int64 `json:"dijkstra_runs"`
		} `json:"work"`
	}
	if err := json.Unmarshal([]byte(out[i:]), &sum); err != nil {
		t.Fatalf("decode: %v\n%s", err, out[i:])
	}
	if sum.Sessions != 20 || sum.Work.DijkstraRuns == 0 {
		t.Fatalf("summary: %+v", sum)
	}
}
