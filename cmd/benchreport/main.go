// Command benchreport folds `go test -bench` text output into the repo's
// committed benchmark-results file (BENCH_kernel.json by default), and
// diffs two results files for CI regression gating.
//
// Usage:
//
//	go test -bench Kernel -benchmem ./... > bench.txt
//	go run ./cmd/benchreport -label current -o BENCH_kernel.json bench.txt [more.txt...]
//
// All input files are concatenated into one labeled run; a run with the
// same label already in the output file is replaced, so `make bench` can
// refresh "current" idempotently while "seed" stays untouched.
//
// Diff mode:
//
//	go run ./cmd/benchreport -check [-against LABEL] old.json new.json
//
// compares a baseline run from old.json against the newest run in new.json
// benchmark-by-benchmark and exits non-zero when any benchmark present in
// both slowed down by more than -threshold (default 0.15 = 15%) in ns/op,
// B/op or allocs/op. The allocation gates only arm when both sides carry
// -benchmem columns, so baselines recorded without them keep gating on
// ns/op alone. Benchmarks only one side has are reported but never fail
// the check. The
// baseline is the run named by -against when given; otherwise the newest
// run in old.json that shares at least one benchmark with the new run (a
// results file accumulates runs covering different benchmark suites —
// kernel, admission, speculation — so the file's newest run need not
// overlap the suite under test).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/muerp/quantumnet/internal/benchio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	label := flag.String("label", "current", "label for this run in the results file")
	out := flag.String("o", "BENCH_kernel.json", "results file to update")
	check := flag.Bool("check", false, "diff mode: compare two results files instead of ingesting bench output")
	threshold := flag.Float64("threshold", 0.15, "with -check, fail on ns/op regressions above this fraction")
	against := flag.String("against", "", "with -check, compare against this labeled run of old.json (default: newest overlapping run)")
	flag.Parse()

	if *check {
		if flag.NArg() != 2 {
			log.Fatal("usage: benchreport -check [-threshold FRAC] [-against LABEL] old.json new.json")
		}
		os.Exit(runCheck(flag.Arg(0), flag.Arg(1), *against, *threshold))
	}

	if flag.NArg() == 0 {
		log.Fatal("usage: benchreport [-label NAME] [-o FILE] bench-output.txt...")
	}

	var merged benchio.Report
	for i, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := benchio.Parse(f, *label)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if i == 0 {
			merged = rep
		} else {
			merged.Results = append(merged.Results, rep.Results...)
		}
	}
	if len(merged.Results) == 0 {
		log.Fatal("no benchmark results found in input")
	}

	file, err := benchio.Load(*out)
	if err != nil {
		log.Fatal(err)
	}
	file.Upsert(merged)
	if err := file.Save(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d results as %q to %s (%d runs total)",
		len(merged.Results), *label, *out, len(file.Runs))
}

// runCheck diffs a baseline run of oldPath against the newest run of
// newPath and returns the process exit code: 0 when no shared benchmark
// regressed past the threshold, 1 otherwise.
func runCheck(oldPath, newPath, against string, threshold float64) int {
	newRun := lastRun(newPath)
	oldRun := baselineRun(oldPath, against, newRun)
	deltas := benchio.Compare(oldRun, newRun)
	if len(deltas) == 0 {
		log.Fatalf("no shared benchmarks between %s (%q) and %s (%q)",
			oldPath, oldRun.Label, newPath, newRun.Label)
	}

	fmt.Printf("comparing %q (%s) -> %q (%s), threshold %+.0f%% (ns/op, B/op, allocs/op)\n",
		oldRun.Label, oldPath, newRun.Label, newPath, threshold*100)
	regressed := 0
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.Regressed(threshold):
			verdict = "REGRESSED"
			regressed++
		case d.AllocRegressed(threshold):
			verdict = "REGRESSED(alloc)"
			regressed++
		}
		fmt.Printf("  %-60s %12.0f -> %12.0f ns/op  %+6.1f%%%s  %s\n",
			d.Name, d.OldNs, d.NewNs, (d.Ratio()-1)*100, allocCols(d), verdict)
	}
	if regressed > 0 {
		fmt.Printf("%d of %d shared benchmarks regressed >%.0f%%\n",
			regressed, len(deltas), threshold*100)
		return 1
	}
	fmt.Printf("all %d shared benchmarks within threshold\n", len(deltas))
	return 0
}

// allocCols renders a delta's allocation movement, empty when either side
// was recorded without -benchmem.
func allocCols(d benchio.Delta) string {
	if d.OldBytes < 0 || d.NewBytes < 0 {
		return ""
	}
	return fmt.Sprintf("  %d -> %d B/op  %d -> %d allocs/op",
		d.OldBytes, d.NewBytes, d.OldAllocs, d.NewAllocs)
}

// lastRun loads a results file and returns its newest (last) run.
func lastRun(path string) benchio.Report {
	f, err := benchio.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	if len(f.Runs) == 0 {
		log.Fatalf("%s holds no benchmark runs", path)
	}
	return f.Runs[len(f.Runs)-1]
}

// baselineRun picks the comparison baseline out of a results file: the
// newest run with the requested label, or — with no label — the newest run
// sharing at least one benchmark with the run under test.
func baselineRun(path, label string, newRun benchio.Report) benchio.Report {
	f, err := benchio.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	if len(f.Runs) == 0 {
		log.Fatalf("%s holds no benchmark runs", path)
	}
	labels := make([]string, 0, len(f.Runs))
	for i := len(f.Runs) - 1; i >= 0; i-- {
		run := f.Runs[i]
		labels = append(labels, fmt.Sprintf("%q", run.Label))
		if label != "" {
			if run.Label == label {
				return run
			}
			continue
		}
		if len(benchio.Compare(run, newRun)) > 0 {
			return run
		}
	}
	if label != "" {
		log.Fatalf("%s holds no run labeled %q (have %s)", path, label, strings.Join(labels, ", "))
	}
	log.Fatalf("no run in %s shares benchmarks with %q (have %s)", path, newRun.Label, strings.Join(labels, ", "))
	return benchio.Report{}
}
