// Command benchreport folds `go test -bench` text output into the repo's
// committed benchmark-results file (BENCH_kernel.json by default).
//
// Usage:
//
//	go test -bench Kernel -benchmem ./... > bench.txt
//	go run ./cmd/benchreport -label current -o BENCH_kernel.json bench.txt [more.txt...]
//
// All input files are concatenated into one labeled run; a run with the
// same label already in the output file is replaced, so `make bench` can
// refresh "current" idempotently while "seed" stays untouched.
package main

import (
	"flag"
	"log"
	"os"

	"github.com/muerp/quantumnet/internal/benchio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	label := flag.String("label", "current", "label for this run in the results file")
	out := flag.String("o", "BENCH_kernel.json", "results file to update")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: benchreport [-label NAME] [-o FILE] bench-output.txt...")
	}

	var merged benchio.Report
	for i, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := benchio.Parse(f, *label)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if i == 0 {
			merged = rep
		} else {
			merged.Results = append(merged.Results, rep.Results...)
		}
	}
	if len(merged.Results) == 0 {
		log.Fatal("no benchmark results found in input")
	}

	file, err := benchio.Load(*out)
	if err != nil {
		log.Fatal(err)
	}
	file.Upsert(merged)
	if err := file.Save(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d results as %q to %s (%d runs total)",
		len(merged.Results), *label, *out, len(file.Runs))
}
