package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with args and returns its stdout.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	err := run(args, &buf)
	return buf.String(), err
}

func TestRunDefaultsSmall(t *testing.T) {
	out, err := capture(t, "-users", "5", "-switches", "15", "-seed", "3")
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"graph(20 nodes", "algorithm:", "alg3", "entanglement rate:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"alg2", "alg3", "alg4", "eqcast", "nfusion"} {
		t.Run(alg, func(t *testing.T) {
			out, err := capture(t, "-alg", alg, "-users", "4", "-switches", "12", "-seed", "5")
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(out, alg) {
				t.Errorf("output does not name %s:\n%s", alg, out)
			}
		})
	}
}

func TestRunVerboseAndMonteCarlo(t *testing.T) {
	out, err := capture(t, "-users", "4", "-switches", "10", "-v", "-trials", "2000")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "channel") {
		t.Errorf("verbose output missing channels:\n%s", out)
	}
	if !strings.Contains(out, "monte carlo:") {
		t.Errorf("missing monte carlo line:\n%s", out)
	}
}

func TestRunInfeasibleReportsGracefully(t *testing.T) {
	// Q=0 switches: only direct user-user fibers could serve; with the
	// default sparse wiring, routing typically fails — and must be reported
	// as a message, not an error exit.
	out, err := capture(t, "-users", "6", "-switches", "20", "-qubits", "0", "-alg", "alg3", "-seed", "2")
	if err != nil {
		t.Fatalf("infeasible run errored: %v", err)
	}
	if !strings.Contains(out, "no feasible") && !strings.Contains(out, "entanglement rate:") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunLoadsTopologyJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	data := `{
		"nodes": [
			{"kind":"user","x":0,"y":0},
			{"kind":"switch","x":500,"y":0,"qubits":4},
			{"kind":"user","x":1000,"y":0}
		],
		"edges": [
			{"a":0,"b":1,"length":500},
			{"a":1,"b":2,"length":500}
		]
	}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "-in", path, "-alg", "alg3")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "graph(3 nodes: 2 users, 1 switches; 2 edges)") {
		t.Errorf("unexpected graph line:\n%s", out)
	}
}

func TestRunListSolvers(t *testing.T) {
	out, err := capture(t, "-alg", "list")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"alg2", "alg3", "alg4", "eqcast", "nfusion", "exact", "Algorithm 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("solver listing missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "graph(") {
		t.Errorf("-alg list should not generate a network:\n%s", out)
	}
}

func TestRunUnknownAlgorithmNamesKnownOnes(t *testing.T) {
	_, err := capture(t, "-alg", "dijkstra", "-users", "4", "-switches", "10")
	if err == nil {
		t.Fatal("run with unknown algorithm succeeded, want error")
	}
	for _, want := range []string{"dijkstra", "alg3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRunRejects(t *testing.T) {
	tests := [][]string{
		{"-model", "erdos"},
		{"-alg", "dijkstra"},
		{"-users", "0"},
		{"-q", "2"},
		{"-in", "/nonexistent/net.json"},
		{"-badflag"},
	}
	for _, args := range tests {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunWritesDOT(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.dot")
	out, err := capture(t, "-users", "4", "-switches", "10", "-dot", path)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "dot written to:") {
		t.Errorf("no dot confirmation:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("dot file missing: %v", err)
	}
	if !strings.HasPrefix(string(data), "graph quantumnet {") {
		t.Errorf("unexpected dot prefix: %q", string(data[:30]))
	}
	if !strings.Contains(string(data), "penwidth") {
		t.Error("routed channels not highlighted in dot output")
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := capture(t, "-version")
	if err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.Contains(out, "quantumnet") || !strings.Contains(out, "go1.") {
		t.Fatalf("version output: %q", out)
	}
}
