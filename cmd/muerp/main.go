// Command muerp routes multi-user entanglement on a quantum network and
// reports the achieved entanglement rate.
//
// It either generates a random network (paper §V-A style) or loads one from
// JSON, runs one of the five routing schemes, validates the tree, and
// prints the channels. Optionally it cross-checks the analytic rate with a
// Monte Carlo simulation.
//
// Usage:
//
//	muerp [flags]
//
//	-model    waxman | watts-strogatz | volchenkov   (default waxman)
//	-users    number of quantum users                 (default 10)
//	-switches number of quantum switches              (default 50)
//	-degree   average node degree                     (default 6)
//	-qubits   qubits per switch                       (default 4)
//	-q        BSM swap success probability            (default 0.9)
//	-alpha    fiber attenuation per km                (default 1e-4)
//	-seed     RNG seed                                (default 1)
//	-alg      routing scheme, or "list" to enumerate  (default alg3)
//	-in       load topology JSON instead of generating
//	-trials   Monte Carlo rounds (0 = skip)
//	-v        print every channel
//	-version  print build info and exit
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/muerp/quantumnet/internal/buildinfo"
	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/montecarlo"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sim"
	"github.com/muerp/quantumnet/internal/solver"
	"github.com/muerp/quantumnet/internal/topology"
	"github.com/muerp/quantumnet/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "muerp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("muerp", flag.ContinueOnError)
	var (
		model    = fs.String("model", "waxman", "topology model: waxman, watts-strogatz, volchenkov")
		users    = fs.Int("users", 10, "number of quantum users")
		switches = fs.Int("switches", 50, "number of quantum switches")
		degree   = fs.Float64("degree", 6, "average node degree")
		qubits   = fs.Int("qubits", 4, "qubits per switch")
		swapProb = fs.Float64("q", 0.9, "BSM swap success probability")
		alpha    = fs.Float64("alpha", 1e-4, "fiber attenuation per km")
		seed     = fs.Int64("seed", 1, "RNG seed")
		alg      = fs.String("alg", "alg3", `routing scheme (see -alg list)`)
		inFile   = fs.String("in", "", "load topology JSON instead of generating")
		trials   = fs.Int("trials", 0, "Monte Carlo validation rounds (0 = skip)")
		verbose  = fs.Bool("v", false, "print every channel")
		dotFile  = fs.String("dot", "", "write the network + routed tree as Graphviz DOT to this file")
		version  = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String())
		return nil
	}

	if *alg == "list" {
		listSolvers(out)
		return nil
	}

	g, err := loadOrGenerate(*inFile, *model, *users, *switches, *degree, *qubits, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, g)

	params := quantum.Params{Alpha: *alpha, SwapProb: *swapProb}
	cfg := sim.DefaultConfig()
	cfg.Params = params
	rng := rand.New(rand.NewSource(*seed))
	sol, prob, err := sim.SolveOn(g, *alg, cfg, rng)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			fmt.Fprintf(out, "%s: no feasible entanglement tree (%v)\n", *alg, err)
			return nil
		}
		return err
	}
	if err := prob.Validate(sol); err != nil {
		return fmt.Errorf("internal error: invalid solution: %w", err)
	}

	fmt.Fprintf(out, "algorithm:          %s\n", sol.Algorithm)
	fmt.Fprintf(out, "channels:           %d\n", len(sol.Tree.Channels))
	fmt.Fprintf(out, "entanglement rate:  %.6e\n", sol.Rate())
	if sol.MeasurementFactor != 0 && sol.MeasurementFactor != 1 {
		fmt.Fprintf(out, "fusion factor:      %.6e\n", sol.MeasurementFactor)
	}
	if *verbose {
		for i, ch := range sol.Tree.Channels {
			fmt.Fprintf(out, "  [%2d] %s\n", i, ch)
		}
	}

	if *trials > 0 {
		res, err := montecarlo.SimulateSolution(prob.Graph, sol, params, *trials,
			rand.New(rand.NewSource(*seed+1)))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "monte carlo:        %.6e (analytic %.6e, %d/%d rounds, ci95 ±%.2e)\n",
			res.Rate, res.Analytic, res.Successes, res.Trials, res.CI95)
	}

	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(viz.DOT(g, sol)), 0o644); err != nil {
			return fmt.Errorf("write dot: %w", err)
		}
		fmt.Fprintf(out, "dot written to:     %s\n", *dotFile)
	}
	return nil
}

// listSolvers prints every registered routing scheme in canonical order,
// flagging variants and the assumptions each scheme carries.
func listSolvers(out io.Writer) {
	fmt.Fprintln(out, "registered routing schemes:")
	for _, e := range solver.List() {
		var notes []string
		if e.NeedsSufficientCapacity {
			notes = append(notes, "assumes sufficient switch capacity")
		}
		if e.ConsumesRNG {
			notes = append(notes, "randomized (uses -seed)")
		}
		if !e.Default {
			notes = append(notes, "not in the default suite")
		}
		line := fmt.Sprintf("  %-18s %s", e.Name, e.Label)
		for i, n := range notes {
			if i == 0 {
				line += "  [" + n
			} else {
				line += "; " + n
			}
		}
		if len(notes) > 0 {
			line += "]"
		}
		fmt.Fprintln(out, line)
	}
}

func loadOrGenerate(inFile, model string, users, switches int, degree float64, qubits int, seed int64) (*graph.Graph, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		return graph.ReadJSON(f)
	}
	m, err := topology.ParseModel(model)
	if err != nil {
		return nil, err
	}
	cfg := topology.Default()
	cfg.Model = m
	cfg.Users = users
	cfg.Switches = switches
	cfg.AvgDegree = degree
	cfg.SwitchQubits = qubits
	return topology.Generate(cfg, rand.New(rand.NewSource(seed)))
}
