// Command qsim runs the discrete-time slotted entanglement simulator
// (internal/timesim) over a generated topology: per-slot link generation,
// decoherence TTLs on qubit memories, fidelity aging, purification
// scheduling, and seeded traffic models (internal/workload) driving session
// arrivals through the admission layer — the dynamic counterpart of the
// analytic experiment harness in cmd/muerp.
//
// Usage:
//
//	qsim [flags]
//
//	-model/-users/-switches/-degree/-qubits/-seed  as in cmd/muerp
//	-slots         simulated slots (default 400)
//	-arrival       traffic model: poisson | diurnal | flash (default poisson)
//	-rate          mean session arrivals per slot (default 0.3)
//	-hold          mean session hold in slots (default 25)
//	-group-min/-group-max  session size bounds (default 2..3)
//	-ttl           qubit-memory decoherence TTL in slots (default 8)
//	-gamma         Werner-parameter decay per stored slot (default 0.01)
//	-min-fidelity  delivery floor; enables purification scheduling (default 0)
//	-alg           admission scheme: greedy or a solver registry name
//	-fail-prob     per-fiber per-slot failure probability (default 0)
//	-repair-slots  slots a failed fiber stays down (default 25)
//	-parallel      session-advance workers; results identical at any value
//	-sweep-ttl     comma list of TTLs: emit a delivered-rate-vs-TTL CSV
//	-window        slots per load-trace bucket: emit a windowed CSV
//	-out           CSV destination for -sweep-ttl / -window
//	-append        append to -out without rewriting the header
//	-stats         print solve-work counters
//	-version       print build info and exit
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	goruntime "runtime"
	"strconv"
	"strings"

	"github.com/muerp/quantumnet/internal/buildinfo"
	"github.com/muerp/quantumnet/internal/fidelity"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/timesim"
	"github.com/muerp/quantumnet/internal/topology"
	"github.com/muerp/quantumnet/internal/workload"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qsim", flag.ContinueOnError)
	var (
		model    = fs.String("model", "waxman", "topology model")
		users    = fs.Int("users", 6, "number of users")
		switches = fs.Int("switches", 20, "number of switches")
		degree   = fs.Float64("degree", 6, "average node degree")
		qubits   = fs.Int("qubits", 4, "qubits per switch")
		seed     = fs.Int64("seed", 1, "RNG seed")
		slots    = fs.Int("slots", 400, "simulated slots")
		arrival  = fs.String("arrival", "poisson", "traffic model: poisson, diurnal or flash")
		rate     = fs.Float64("rate", 0.3, "mean session arrivals per slot")
		hold     = fs.Float64("hold", 25, "mean session hold in slots")
		groupMin = fs.Int("group-min", 2, "smallest session user group")
		groupMax = fs.Int("group-max", 3, "largest session user group")
		ttl      = fs.Int("ttl", 8, "qubit-memory decoherence TTL in slots")
		gamma    = fs.Float64("gamma", 0.01, "Werner decay per stored slot")
		minFid   = fs.Float64("min-fidelity", 0, "delivery fidelity floor (0 disables purification)")
		alg      = fs.String("alg", timesim.GreedyAlgorithm, "admission scheme: greedy or a solver name")
		failProb = fs.Float64("fail-prob", 0, "per-fiber per-slot failure probability")
		repSlots = fs.Int("repair-slots", 25, "slots a failed fiber stays down (<= 0: permanent)")
		parallel = fs.Int("parallel", goruntime.GOMAXPROCS(0), "session-advance workers")
		sweepTTL = fs.String("sweep-ttl", "", "comma-separated TTL list for a delivered-rate sweep CSV")
		window   = fs.Int("window", 0, "slots per load-trace CSV bucket (0 disables)")
		outPath  = fs.String("out", "", "CSV destination for -sweep-ttl / -window")
		appendTo = fs.Bool("append", false, "append CSV rows to -out, skipping the header")
		stats    = fs.Bool("stats", false, "print solve-work counters")
		version  = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String())
		return nil
	}
	if *sweepTTL != "" && *window > 0 {
		return fmt.Errorf("-sweep-ttl and -window are mutually exclusive")
	}
	if (*sweepTTL != "" || *window > 0) && *outPath == "" {
		return fmt.Errorf("-sweep-ttl/-window need -out")
	}

	m, err := topology.ParseModel(*model)
	if err != nil {
		return err
	}
	tcfg := topology.Default()
	tcfg.Model = m
	tcfg.Users = *users
	tcfg.Switches = *switches
	tcfg.AvgDegree = *degree
	tcfg.SwitchQubits = *qubits
	g, err := topology.Generate(tcfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, g)

	proc, err := workload.ParseProcess(*arrival, *rate, float64(*slots))
	if err != nil {
		return err
	}
	// Streams 3 and 4 of the run seed drive the traffic draw; the engine
	// itself derives its control and session streams from the same seed.
	arrivals, err := workload.Arrivals(proc, float64(*slots), rand.New(rand.NewSource(*seed+3)))
	if err != nil {
		return err
	}
	reqs, err := workload.Draw{MeanHold: *hold, MinUsers: *groupMin, MaxUsers: *groupMax}.
		Sessions(g, arrivals, rand.New(rand.NewSource(*seed+4)))
	if err != nil {
		return err
	}

	fid := fidelity.DefaultModel()
	fid.Gamma = *gamma
	cfg := timesim.Config{
		Graph:       g,
		Params:      quantum.DefaultParams(),
		Fid:         fid,
		Slots:       *slots,
		MemoryTTL:   *ttl,
		MinFidelity: *minFid,
		Algorithm:   *alg,
		Seed:        *seed,
		FailProb:    *failProb,
		RepairSlots: *repSlots,
		Parallelism: *parallel,
		WindowSlots: *window,
	}
	fmt.Fprintf(out, "slot engine:     %d slots, ttl %d, gamma %g, alg %s\n",
		cfg.Slots, cfg.MemoryTTL, cfg.Fid.Gamma, cfg.Algorithm)
	fmt.Fprintf(out, "arrival process: %s (mean %g/slot, peak %g/slot, %d sessions)\n",
		proc.Name(), *rate, proc.MaxRate(), len(reqs))

	if *sweepTTL != "" {
		return sweep(ctx, out, cfg, reqs, *sweepTTL, *outPath, *appendTo)
	}

	rep, err := timesim.Run(ctx, cfg, reqs)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	if *stats {
		fmt.Fprintf(out, "solve work:      %s\n", rep.Work.String())
	}
	if *window > 0 {
		if err := writeLoadCSV(*outPath, *appendTo, proc.Name(), rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "load trace:      %d windows -> %s\n", len(rep.Windows), *outPath)
	}
	return nil
}

// sweep reruns the same workload at each TTL and writes the delivered-rate
// curve. Every run reuses the full config (same seed, same requests), so
// the TTL is the only thing that varies.
func sweep(ctx context.Context, out io.Writer, cfg timesim.Config, reqs []sched.Request, list, path string, appendTo bool) error {
	var ttls []int
	for _, part := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -sweep-ttl entry %q", part)
		}
		ttls = append(ttls, v)
	}
	f, cw, err := openCSV(path, appendTo, []string{
		"ttl", "offered", "admitted", "rejected", "dropped", "delivered",
		"delivered_per_slot", "mean_fidelity", "decohered_links",
		"decohered_pairs", "purify_attempts", "purify_successes",
	})
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	for _, ttl := range ttls {
		cfg.MemoryTTL = ttl
		rep, err := timesim.Run(ctx, cfg, reqs)
		if err != nil {
			return fmt.Errorf("ttl %d: %w", ttl, err)
		}
		fmt.Fprintf(out, "ttl %3d: delivered %d (%.6g per slot), mean fidelity %.6g\n",
			ttl, rep.Delivered, rep.DeliveredPerSlot(), rep.MeanFidelity())
		if err := cw.Write([]string{
			strconv.Itoa(ttl),
			strconv.Itoa(rep.Offered),
			strconv.Itoa(rep.Admitted),
			strconv.Itoa(rep.Rejected),
			strconv.Itoa(rep.Dropped),
			strconv.FormatInt(rep.Delivered, 10),
			strconv.FormatFloat(rep.DeliveredPerSlot(), 'e', 6, 64),
			strconv.FormatFloat(rep.MeanFidelity(), 'e', 6, 64),
			strconv.FormatInt(rep.DecoheredLinks, 10),
			strconv.FormatInt(rep.DecoheredPairs, 10),
			strconv.FormatInt(rep.PurifyAttempts, 10),
			strconv.FormatInt(rep.PurifySuccesses, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	fmt.Fprintf(out, "ttl sweep:       %d points -> %s\n", len(ttls), path)
	return nil
}

// writeLoadCSV emits one row per window, tagged with the traffic model so
// several runs (diurnal, flash) can share one file via -append.
func writeLoadCSV(path string, appendTo bool, process string, rep timesim.Report) error {
	f, cw, err := openCSV(path, appendTo, []string{
		"process", "start_slot", "offered", "admitted", "rejected",
		"dropped", "delivered", "active_at_end",
	})
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	for _, w := range rep.Windows {
		if err := cw.Write([]string{
			process,
			strconv.Itoa(w.StartSlot),
			strconv.Itoa(w.Offered),
			strconv.Itoa(w.Admitted),
			strconv.Itoa(w.Rejected),
			strconv.Itoa(w.Dropped),
			strconv.Itoa(w.Delivered),
			strconv.Itoa(w.ActiveAtEnd),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// openCSV creates (or, with appendTo, extends) the CSV at path. The header
// is written only when starting a fresh file.
func openCSV(path string, appendTo bool, header []string) (*os.File, *csv.Writer, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if appendTo {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, err
	}
	cw := csv.NewWriter(f)
	needHeader := !appendTo
	if appendTo {
		if st, err := f.Stat(); err == nil && st.Size() == 0 {
			needHeader = true
		}
	}
	if needHeader {
		if err := cw.Write(header); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	}
	return f, cw, nil
}
