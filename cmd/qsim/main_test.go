package main

import (
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleRunSummary(t *testing.T) {
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-slots", "150", "-rate", "0.3", "-seed", "5",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"slot engine:", "arrival process: poisson", "offered:", "admitted:",
		"delivered:", "decohered:", "trace hash:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// The printed output is fully deterministic for a seed: no timings, no map
// iteration, no wall clock.
func TestOutputDeterministic(t *testing.T) {
	args := []string{"-slots", "150", "-rate", "0.4", "-arrival", "diurnal", "-seed", "9", "-parallel", "3"}
	var a, b strings.Builder
	if err := run(context.Background(), args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("output diverged:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestSweepTTLWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ttl.csv")
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-slots", "100", "-rate", "0.3", "-seed", "3",
		"-sweep-ttl", "1,4,8", "-out", path,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want header + 3", len(rows))
	}
	if rows[0][0] != "ttl" || rows[0][6] != "delivered_per_slot" {
		t.Fatalf("unexpected header %v", rows[0])
	}
	if rows[1][0] != "1" || rows[2][0] != "4" || rows[3][0] != "8" {
		t.Fatalf("unexpected ttl column: %v %v %v", rows[1][0], rows[2][0], rows[3][0])
	}
	if !strings.Contains(buf.String(), "ttl sweep:") {
		t.Errorf("no sweep summary:\n%s", buf.String())
	}
}

func TestWindowedLoadCSVAndAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.csv")
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-slots", "120", "-rate", "0.5", "-arrival", "flash", "-seed", "3",
		"-window", "30", "-out", path,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	err = run(context.Background(), []string{
		"-slots", "120", "-rate", "0.5", "-arrival", "diurnal", "-seed", "3",
		"-window", "30", "-out", path, "-append",
	}, &buf)
	if err != nil {
		t.Fatalf("append run: %v\n%s", err, buf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // header + 4 flash windows + 4 diurnal windows
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	if rows[0][0] != "process" {
		t.Fatalf("unexpected header %v", rows[0])
	}
	procs := map[string]int{}
	for _, r := range rows[1:] {
		procs[r[0]]++
	}
	if procs["flash"] != 4 || procs["diurnal"] != 4 {
		t.Fatalf("process rows: %v", procs)
	}
}

func TestFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"sweep without out":  {"-sweep-ttl", "1,2"},
		"window without out": {"-window", "10"},
		"sweep and window":   {"-sweep-ttl", "1", "-window", "10", "-out", "x.csv"},
		"bad sweep entry":    {"-sweep-ttl", "1,zero", "-out", os.DevNull},
		"bad arrival":        {"-arrival", "bursty"},
		"bad alg":            {"-slots", "10", "-alg", "nope"},
	} {
		var buf strings.Builder
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("%s: run succeeded", name)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quantumnet") {
		t.Fatalf("version output: %q", buf.String())
	}
}
