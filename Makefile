# Quantumnet build/test/bench entry points. `make tier1` is the gate every
# change must pass; `make bench` refreshes the committed benchmark results.

GO ?= go
BENCH_OUT ?= BENCH_kernel.json
BENCH_LABEL ?= current
BENCH_TMP := $(shell mktemp -d 2>/dev/null || echo /tmp/quantumnet-bench)

.PHONY: build test vet race tier1 bench list-solvers clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the data-race detector over the packages with internal
# concurrency: core's parallel all-pairs fan-out and sim's batch pool.
race:
	$(GO) test -race ./internal/core ./internal/sim

# tier1 is the repo's merge gate: build, full tests, vet, race.
tier1: build test vet race

# bench refreshes BENCH_kernel.json's "$(BENCH_LABEL)" run: the channel
# search kernel + solver microbenches (with allocation counts) and the two
# headline figure benches. Compare runs with `benchstat` on the raw text
# outputs left in $(BENCH_TMP). See EXPERIMENTS.md for the protocol.
bench:
	mkdir -p $(BENCH_TMP)
	$(GO) test -run '^$$' -bench 'BenchmarkAlgorithm1ChannelSearch|BenchmarkSolvers' \
		-benchmem -benchtime 2s . | tee $(BENCH_TMP)/kernel.txt
	$(GO) test -run '^$$' -bench 'BenchmarkFig5Topology|BenchmarkFig6aUsers' \
		-benchmem -benchtime 2x . | tee $(BENCH_TMP)/figs.txt
	$(GO) run ./cmd/benchreport -label $(BENCH_LABEL) -o $(BENCH_OUT) \
		$(BENCH_TMP)/kernel.txt $(BENCH_TMP)/figs.txt

# list-solvers prints every routing scheme in the registry, with labels and
# per-scheme assumptions (sufficient capacity, randomness).
list-solvers:
	$(GO) run ./cmd/muerp -alg list

clean:
	$(GO) clean ./...
