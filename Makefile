# Quantumnet build/test/bench entry points. `make tier1` is the gate every
# change must pass; `make bench` refreshes the committed benchmark results.

GO ?= go
BENCH_OUT ?= BENCH_kernel.json
BENCH_LABEL ?= current
BENCH_TMP := $(shell mktemp -d 2>/dev/null || echo /tmp/quantumnet-bench)

.PHONY: build test vet race tier1 bench bench-service bench-check list-solvers serve loadtest smoke-service smoke-service-sharded smoke-recovery smoke-recovery-sharded smoke-qos smoke-timesim clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the data-race detector over the packages with internal
# concurrency: core's parallel all-pairs fan-out, sim's batch pool,
# quantum's shared ledger (the mutex-serialized mutation contract and
# lock-free read-only use), service's admission loop + expiry wheel +
# durability wiring + sharded two-phase router, qos's tenant scheduler and
# token buckets (hit from every submitting goroutine), the WAL's
# group-commit loop and snapshotter, topology's partitioner (read
# concurrently by shards), and timesim's parallel slot advance (sessions
# fan out across workers each slot; workload rides along as its request
# source).
race:
	$(GO) test -race ./internal/core ./internal/sim ./internal/quantum \
		./internal/service ./internal/qos ./internal/wal ./internal/snapshot \
		./internal/topology ./internal/timesim ./internal/workload

# tier1 is the repo's merge gate: build, full tests, vet, race.
tier1: build test vet race

# bench refreshes BENCH_kernel.json's "$(BENCH_LABEL)" run: the channel
# search kernel + solver microbenches (with allocation counts) and the two
# headline figure benches. Compare runs with `benchstat` on the raw text
# outputs left in $(BENCH_TMP). See EXPERIMENTS.md for the protocol.
bench:
	mkdir -p $(BENCH_TMP)
	$(GO) test -run '^$$' -bench 'BenchmarkAlgorithm1ChannelSearch|BenchmarkSolvers' \
		-benchmem -benchtime 2s . | tee $(BENCH_TMP)/kernel.txt
	$(GO) test -run '^$$' -bench 'BenchmarkChannelSearch|BenchmarkConnectUnions' \
		-benchmem -benchtime 2s ./internal/core | tee $(BENCH_TMP)/engine.txt
	$(GO) test -run '^$$' -bench 'BenchmarkFig5Topology|BenchmarkFig6aUsers' \
		-benchmem -benchtime 2x . | tee $(BENCH_TMP)/figs.txt
	$(GO) run ./cmd/benchreport -label $(BENCH_LABEL) -o $(BENCH_OUT) \
		$(BENCH_TMP)/kernel.txt $(BENCH_TMP)/engine.txt $(BENCH_TMP)/figs.txt

# bench-service refreshes the "footprint" run: the end-to-end admission
# loop across batch sizes, durability, the speculative scheduler's worker
# sweep (big-workers{1,2,4}), the solve-cache hot-repeats pair, and the
# sharded admission plane (sharded-shards{1,2,4}). The workersN/workers1
# ratio is the speculation speedup and shardsN/shards1 the sharding
# speedup; both need GOMAXPROCS >= N to show — on fewer cores the sweeps
# record coordination overhead instead (see EXPERIMENTS.md). Recorded with
# -benchmem so the alloc regression gate arms against this run.
bench-service:
	mkdir -p $(BENCH_TMP)
	$(GO) test -run '^$$' -bench 'BenchmarkAdmissionLoop|BenchmarkShardedAdmission' \
		-benchmem -benchtime 1s ./internal/service | tee $(BENCH_TMP)/service.txt
	$(GO) run ./cmd/benchreport -label footprint -o $(BENCH_OUT) \
		$(BENCH_TMP)/service.txt

# bench-check is the CI perf smoke: quick (short-benchtime) passes over the
# solver/engine benches and the admission loop, each diffed against the
# committed baseline run that covers the same suite (kernel benches against
# the newest overlapping run, admission benches against the "footprint"
# run). Exits non-zero when any shared benchmark is >15% worse in ns/op,
# B/op or allocs/op (the alloc gates arm only where both sides carry
# -benchmem columns); names are paired ignoring the -N procs suffix so the
# committed baseline works across machines. See `benchreport -check`.
bench-check:
	mkdir -p $(BENCH_TMP)
	$(GO) test -run '^$$' -bench 'BenchmarkAlgorithm1ChannelSearch|BenchmarkSolvers' \
		-benchmem -benchtime 0.5s . | tee $(BENCH_TMP)/smoke-kernel.txt
	$(GO) test -run '^$$' -bench 'BenchmarkChannelSearch|BenchmarkConnectUnions' \
		-benchmem -benchtime 0.5s ./internal/core | tee $(BENCH_TMP)/smoke-engine.txt
	$(GO) run ./cmd/benchreport -label smoke -o $(BENCH_TMP)/smoke.json \
		$(BENCH_TMP)/smoke-kernel.txt $(BENCH_TMP)/smoke-engine.txt
	$(GO) run ./cmd/benchreport -check $(BENCH_OUT) $(BENCH_TMP)/smoke.json
	$(GO) test -run '^$$' -bench 'BenchmarkAdmissionLoop' \
		-benchmem -benchtime 0.3s ./internal/service | tee $(BENCH_TMP)/smoke-service.txt
	$(GO) run ./cmd/benchreport -label smoke-service -o $(BENCH_TMP)/smoke-service.json \
		$(BENCH_TMP)/smoke-service.txt
	$(GO) run ./cmd/benchreport -check -against footprint \
		$(BENCH_OUT) $(BENCH_TMP)/smoke-service.json

# list-solvers prints every routing scheme in the registry, with labels and
# per-scheme assumptions (sufficient capacity, randomness).
list-solvers:
	$(GO) run ./cmd/muerp -alg list

# serve boots the admission daemon on the default address (override with
# ADDR=host:port). See DESIGN.md §6 for the HTTP API.
ADDR ?= 127.0.0.1:8089
serve:
	$(GO) run ./cmd/muerpd -addr $(ADDR)

# loadtest replays a workload against an already-running daemon at ADDR.
loadtest:
	$(GO) run ./cmd/qload -addr $(ADDR) -sessions 200 -unit 5ms

# smoke-service is the CI end-to-end check: boot muerpd on a random port,
# replay ~50 sessions through qload (>=1 must be accepted), SIGTERM, and
# require a clean drain within 10s.
smoke-service:
	bash scripts/smoke_service.sh

# smoke-service-sharded reruns the serving smoke against a 4-shard daemon:
# qload must detect the partition, print the per-shard breakdown, and the
# router counters must surface through /metrics.
smoke-service-sharded:
	SHARDS=4 bash scripts/smoke_service.sh

# smoke-qos is the CI multi-tenant check: boot muerpd with a two-tenant
# policy (one tenant on a tight quota), replay a weighted mix through qload
# with a retry budget, and require the quota to throttle only that tenant
# while the other's traffic is admitted. See DESIGN.md §11.
smoke-qos:
	bash scripts/smoke_qos.sh

# smoke-timesim is the CI slotted-simulator check: two same-seed qsim runs
# must be byte-identical (at different -parallel values), a 10^5-session
# Poisson workload must complete, and a small TTL sweep must emit the
# delivered-rate CSV. See DESIGN.md §12.
smoke-timesim:
	bash scripts/smoke_timesim.sh

# smoke-recovery is the CI crash-durability check: boot muerpd with a data
# directory, admit 20 long-TTL sessions over HTTP, SIGKILL, restart on the
# same directory, and require >=95% of the sessions to be live again; ends
# with an offline qrecover pass over the directory. See DESIGN.md §7.
smoke-recovery:
	bash scripts/smoke_recovery.sh

# smoke-recovery-sharded reruns the crash-durability smoke against a
# two-shard daemon: per-shard WAL streams replay independently and qrecover
# must verify and compose both shards offline.
smoke-recovery-sharded:
	SHARDS=2 bash scripts/smoke_recovery.sh

clean:
	$(GO) clean ./...
