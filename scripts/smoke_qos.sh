#!/usr/bin/env bash
# Smoke-test the multi-tenant QoS layer end to end: boot muerpd with a
# two-tenant policy ("hog" on a tight quota, "calm" unlimited), replay a
# weighted mix through qload with a retry budget, and require the quota to
# bite hog — and only hog — while calm traffic is admitted. Then SIGTERM
# and require a clean drain.
#
# Environment knobs:
#   SESSIONS  number of replayed sessions   (default 60)
#   UNIT      real duration of one workload time unit (default 5ms)
#   WORKERS   muerpd admission workers      (default 2)
#   SHARDS    admission shards              (default 1)
#   GO        go binary                     (default go)
set -euo pipefail

GO=${GO:-go}
SESSIONS=${SESSIONS:-60}
UNIT=${UNIT:-5ms}
WORKERS=${WORKERS:-2}
SHARDS=${SHARDS:-1}

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -KILL "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke-qos: building muerpd and qload"
"$GO" build -o "$workdir/muerpd" ./cmd/muerpd
"$GO" build -o "$workdir/qload" ./cmd/qload

# hog: 2 admissions/s sustained, burst 2 — the replay fires far faster, so
# most hog requests must bounce with 429 + Retry-After. calm: no quota.
cat >"$workdir/tenants.json" <<'EOF'
{"tenants":[
  {"id":"hog","weight":1,"rate_per_sec":2,"burst":2},
  {"id":"calm","weight":2}
]}
EOF

echo "smoke-qos: starting muerpd with a two-tenant policy (workers=$WORKERS shards=$SHARDS)"
"$workdir/muerpd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
  -users 8 -switches 16 -qubits 8 -ttl 2s -workers "$WORKERS" -shards "$SHARDS" \
  -qos-config "$workdir/tenants.json" \
  >"$workdir/muerpd.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
  if [[ -s "$workdir/addr" ]]; then
    addr=$(cat "$workdir/addr")
    break
  fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke-qos: muerpd exited before binding" >&2
    cat "$workdir/muerpd.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "smoke-qos: muerpd never wrote its address" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
fi
echo "smoke-qos: daemon at $addr"

grep -q "^muerpd config " "$workdir/muerpd.log" || {
  echo "smoke-qos: no structured config line in daemon log" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
}

qload_out="$workdir/qload.out"
"$workdir/qload" -addr "$addr" -sessions "$SESSIONS" -unit "$UNIT" \
  -tenants "hog=1,calm=1" -retry 1 -min-accepted 1 \
  | tee "$qload_out"

grep -q "^tenant breakdown:" "$qload_out" || {
  echo "smoke-qos: no per-tenant breakdown in qload output" >&2
  exit 1
}
grep -q "^server tenants:" "$qload_out" || {
  echo "smoke-qos: no per-tenant server metrics in qload output" >&2
  exit 1
}

# The quota must have bitten hog and spared calm: read both rows from the
# breakdown (columns: tenant, total, "requests", accepted, "accepted",
# infeasible, "infeasible", throttled, "throttled", ...).
hog_throttled=$(awk '$1 == "hog" && $3 == "requests" {print $8}' "$qload_out")
calm_throttled=$(awk '$1 == "calm" && $3 == "requests" {print $8}' "$qload_out")
calm_accepted=$(awk '$1 == "calm" && $3 == "requests" {print $4}' "$qload_out")
if [[ -z "$hog_throttled" || -z "$calm_throttled" || -z "$calm_accepted" ]]; then
  echo "smoke-qos: could not parse the tenant breakdown" >&2
  exit 1
fi
if [[ "$hog_throttled" -eq 0 ]]; then
  echo "smoke-qos: hog was never throttled (quota did not bite)" >&2
  exit 1
fi
if [[ "$calm_throttled" -ne 0 ]]; then
  echo "smoke-qos: calm was throttled $calm_throttled times (quota leaked across tenants)" >&2
  exit 1
fi
if [[ "$calm_accepted" -eq 0 ]]; then
  echo "smoke-qos: calm had no accepted sessions" >&2
  exit 1
fi
echo "smoke-qos: quota bit hog ($hog_throttled throttled), calm unaffected ($calm_accepted accepted)"

echo "smoke-qos: sending SIGTERM"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    break
  fi
  sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke-qos: muerpd still alive 10s after SIGTERM" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
fi
wait "$daemon_pid" || {
  echo "smoke-qos: muerpd exited non-zero" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
}
daemon_pid=""

grep -q "final admission summary:" "$workdir/muerpd.log" || {
  echo "smoke-qos: no final summary in daemon log" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
}
echo "smoke-qos: clean shutdown"
echo "smoke-qos: OK"
