#!/usr/bin/env bash
# Smoke-test the discrete-time slotted simulator (internal/timesim) through
# cmd/qsim:
#   1. determinism — two runs with the same seed must print byte-identical
#      output (the summary carries the engine's FNV-1a trace hash, so any
#      trajectory drift shows up as a diff);
#   2. scale — a 10^5-session Poisson workload (5000 slots at 20
#      arrivals/slot) must complete;
#   3. CSV — a small TTL sweep must emit the delivered-rate-vs-TTL table
#      with the expected header and one row per TTL.
#
# Environment knobs:
#   SLOTS   slots for the scale run        (default 5000)
#   RATE    arrivals/slot for the scale run (default 20)
#   GO      go binary                      (default go)
set -euo pipefail

GO=${GO:-go}
SLOTS=${SLOTS:-5000}
RATE=${RATE:-20}

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "smoke-timesim: building qsim"
"$GO" build -o "$workdir/qsim" ./cmd/qsim

echo "smoke-timesim: determinism (same seed, twice, -parallel 4 vs 1)"
"$workdir/qsim" -slots 300 -rate 0.4 -arrival diurnal -seed 11 -fail-prob 0.002 \
  -min-fidelity 0.8 -parallel 4 >"$workdir/run_a.out"
"$workdir/qsim" -slots 300 -rate 0.4 -arrival diurnal -seed 11 -fail-prob 0.002 \
  -min-fidelity 0.8 -parallel 1 >"$workdir/run_b.out"
if ! diff -u "$workdir/run_a.out" "$workdir/run_b.out"; then
  echo "smoke-timesim: same-seed runs diverged" >&2
  exit 1
fi
grep -q "^trace hash:" "$workdir/run_a.out" || {
  echo "smoke-timesim: no trace hash in qsim output" >&2
  cat "$workdir/run_a.out" >&2
  exit 1
}

echo "smoke-timesim: 10^5-session Poisson scale run ($SLOTS slots, $RATE/slot)"
"$workdir/qsim" -slots "$SLOTS" -rate "$RATE" -hold 5 -seed 2 >"$workdir/scale.out"
offered=$(awk '$1 == "offered:" {print $2}' "$workdir/scale.out")
if [[ -z "$offered" || "$offered" -lt 90000 ]]; then
  echo "smoke-timesim: scale run offered only ${offered:-0} sessions (want ~10^5)" >&2
  cat "$workdir/scale.out" >&2
  exit 1
fi
delivered=$(awk '$1 == "delivered:" {print $2}' "$workdir/scale.out")
if [[ -z "$delivered" || "$delivered" -eq 0 ]]; then
  echo "smoke-timesim: scale run delivered nothing" >&2
  cat "$workdir/scale.out" >&2
  exit 1
fi
echo "smoke-timesim: scale run offered $offered sessions, delivered $delivered states"

echo "smoke-timesim: TTL sweep CSV"
"$workdir/qsim" -slots 400 -rate 0.3 -seed 7 -sweep-ttl 1,4,16 \
  -out "$workdir/ttl.csv" >"$workdir/sweep.out"
head -1 "$workdir/ttl.csv" | grep -q "^ttl,offered,admitted," || {
  echo "smoke-timesim: unexpected sweep CSV header" >&2
  cat "$workdir/ttl.csv" >&2
  exit 1
}
rows=$(($(wc -l <"$workdir/ttl.csv") - 1))
if [[ "$rows" -ne 3 ]]; then
  echo "smoke-timesim: sweep CSV has $rows data rows, want 3" >&2
  cat "$workdir/ttl.csv" >&2
  exit 1
fi
echo "smoke-timesim: OK"
