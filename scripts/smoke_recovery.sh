#!/usr/bin/env bash
# Smoke-test crash recovery end to end: boot muerpd with a data directory,
# admit long-TTL sessions over HTTP, SIGKILL the daemon (no drain, no final
# snapshot), restart it on the same directory, and require >=95% of the
# admitted sessions to be live again. Finishes with a clean SIGTERM and an
# offline qrecover pass over the directory the daemon left behind.
#
# Environment knobs:
#   TARGET    sessions to admit before the crash (default 20)
#   SHARDS    admission shards (default 1; >1 exercises per-shard WAL
#             streams and cross-region two-phase commits across the crash)
#   GO        go binary                          (default go)
set -euo pipefail

GO=${GO:-go}
TARGET=${TARGET:-20}
SHARDS=${SHARDS:-1}

command -v jq >/dev/null || { echo "smoke-recovery: jq is required" >&2; exit 1; }

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -KILL "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

# The same topology flags on every boot: recovery refuses to replay a WAL
# against a different network (the pinned topology check).
# -partition-seed 3 splits this topology's users evenly across two regions
# (so a sharded run admits genuinely cross-region sessions); the partition
# is pinned in the data directory and must match on every boot.
topo_flags=(-users 10 -switches 30 -seed 3 -qubits 4)
if (( SHARDS > 1 )); then
  topo_flags+=(-shards "$SHARDS" -partition-seed 3)
fi
data_dir="$workdir/data"

start_daemon() {
  local log=$1
  rm -f "$workdir/addr"
  "$workdir/muerpd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -data-dir "$data_dir" -ttl 10m -max-ttl 30m \
    "${topo_flags[@]}" >"$log" 2>&1 &
  daemon_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    if [[ -s "$workdir/addr" ]]; then
      addr=$(cat "$workdir/addr")
      return
    fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
      echo "smoke-recovery: muerpd exited before binding" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "smoke-recovery: muerpd never wrote its address" >&2
  cat "$log" >&2
  exit 1
}

echo "smoke-recovery: building muerpd and qrecover"
"$GO" build -o "$workdir/muerpd" ./cmd/muerpd
"$GO" build -o "$workdir/qrecover" ./cmd/qrecover

echo "smoke-recovery: starting muerpd with data dir $data_dir"
start_daemon "$workdir/boot1.log"
echo "smoke-recovery: daemon at $addr"

# User node IDs are positions in the served topology's node array.
mapfile -t users < <(curl -fsS "http://$addr/topology" |
  jq -r '.nodes | to_entries | map(select(.value.kind == "user")) | .[].key')
if (( ${#users[@]} < 2 )); then
  echo "smoke-recovery: topology has ${#users[@]} users" >&2
  exit 1
fi

# Admit TARGET sessions two users at a time; TTLs (10m default) far outlive
# the test, so every admitted session should survive the crash.
ids_file="$workdir/session-ids"
: >"$ids_file"
admitted=0
n=${#users[@]}
for i in $(seq 0 199); do
  (( admitted >= TARGET )) && break
  a=${users[$(( i % n ))]}
  b=${users[$(( (i + 1 + i / n) % n ))]}
  [[ "$a" == "$b" ]] && continue
  code=$(curl -sS -o "$workdir/resp.json" -w '%{http_code}' \
    -X POST "http://$addr/sessions" \
    -H 'Content-Type: application/json' \
    -d "{\"users\":[$a,$b]}")
  if [[ "$code" == "201" ]]; then
    jq -r '.id' "$workdir/resp.json" >>"$ids_file"
    admitted=$((admitted + 1))
  fi
done
if (( admitted < TARGET )); then
  echo "smoke-recovery: only $admitted/$TARGET sessions admitted" >&2
  exit 1
fi
before_active=$(curl -fsS "http://$addr/metrics" | jq '.sessions.active')
echo "smoke-recovery: $admitted sessions admitted, $before_active active"

echo "smoke-recovery: SIGKILL (no drain, no final snapshot)"
kill -KILL "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "smoke-recovery: restarting on the same data dir"
start_daemon "$workdir/boot2.log"
metrics=$(curl -fsS "http://$addr/metrics")
after_active=$(jq '.sessions.active' <<<"$metrics")
wal_records=$(jq '.durability.recovery.wal_records' <<<"$metrics")
echo "smoke-recovery: recovery replayed $wal_records WAL records, $after_active sessions active"
if [[ -z "$wal_records" || "$wal_records" == "null" || "$wal_records" -eq 0 ]]; then
  echo "smoke-recovery: restart did not replay any WAL records" >&2
  cat "$workdir/boot2.log" >&2
  exit 1
fi

recovered=0
while read -r id; do
  code=$(curl -sS -o /dev/null -w '%{http_code}' "http://$addr/sessions/$id")
  [[ "$code" == "200" ]] && recovered=$((recovered + 1))
done <"$ids_file"
need=$(( (admitted * 95 + 99) / 100 ))
echo "smoke-recovery: $recovered/$admitted admitted sessions recovered (need >= $need)"
if (( recovered < need )); then
  echo "smoke-recovery: lost $((admitted - recovered)) sessions across the crash" >&2
  cat "$workdir/boot2.log" >&2
  exit 1
fi

echo "smoke-recovery: SIGTERM for a clean drain"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke-recovery: muerpd still alive 10s after SIGTERM" >&2
  exit 1
fi
wait "$daemon_pid" || {
  echo "smoke-recovery: muerpd exited non-zero" >&2
  cat "$workdir/boot2.log" >&2
  exit 1
}
daemon_pid=""

echo "smoke-recovery: offline qrecover verification"
"$workdir/qrecover" -data-dir "$data_dir" | tee "$workdir/qrecover.out"
if (( SHARDS > 1 )); then
  grep -q "partition: $SHARDS regions" "$workdir/qrecover.out" || {
    echo "smoke-recovery: qrecover did not detect the $SHARDS-region layout" >&2
    exit 1
  }
fi

echo "smoke-recovery: OK"
