#!/usr/bin/env bash
# Smoke-test the serving layer end to end: build muerpd and qload, boot the
# daemon on a random port, replay a small workload against it, then SIGTERM
# the daemon and require a clean drain within 10 seconds.
#
# Environment knobs:
#   SESSIONS  number of replayed sessions   (default 50)
#   UNIT      real duration of one workload time unit (default 5ms)
#   WORKERS   muerpd admission workers      (default 4 — exercises the
#             speculative scheduler regardless of runner core count)
#   SHARDS    admission shards              (default 1; >1 partitions the
#             topology and routes through the sharded admission plane)
#   GO        go binary                     (default go)
set -euo pipefail

GO=${GO:-go}
SESSIONS=${SESSIONS:-50}
UNIT=${UNIT:-5ms}
WORKERS=${WORKERS:-4}
SHARDS=${SHARDS:-1}

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -KILL "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke: building muerpd and qload"
"$GO" build -o "$workdir/muerpd" ./cmd/muerpd
"$GO" build -o "$workdir/qload" ./cmd/qload

echo "smoke: starting muerpd on a random port (workers=$WORKERS shards=$SHARDS)"
"$workdir/muerpd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
  -users 8 -switches 16 -ttl 2s -workers "$WORKERS" -shards "$SHARDS" \
  >"$workdir/muerpd.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
  if [[ -s "$workdir/addr" ]]; then
    addr=$(cat "$workdir/addr")
    break
  fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: muerpd exited before binding" >&2
    cat "$workdir/muerpd.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "smoke: muerpd never wrote its address" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
fi
echo "smoke: daemon at $addr"

# The load driver itself gates on at least one accepted session. With
# workers > 1 the speculative scheduler must be active and reporting its
# counters through /metrics (qload prints them as a "speculation:" line).
qload_out="$workdir/qload.out"
"$workdir/qload" -addr "$addr" -sessions "$SESSIONS" -unit "$UNIT" -min-accepted 1 \
  | tee "$qload_out"
if [[ "$WORKERS" -gt 1 ]]; then
  grep -q "^speculation: " "$qload_out" || {
    echo "smoke: workers=$WORKERS but no speculation counters in qload output" >&2
    exit 1
  }
fi
# Against a sharded daemon, qload must detect the partition and print both
# the per-shard breakdown and the router's two-phase-commit counters.
if [[ "$SHARDS" -gt 1 ]]; then
  grep -q "^shard breakdown " "$qload_out" || {
    echo "smoke: shards=$SHARDS but no per-shard breakdown in qload output" >&2
    exit 1
  }
  grep -q "^router: " "$qload_out" || {
    echo "smoke: shards=$SHARDS but no router counters in qload output" >&2
    exit 1
  }
fi

echo "smoke: sending SIGTERM"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    break
  fi
  sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke: muerpd still alive 10s after SIGTERM" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
fi
wait "$daemon_pid" || {
  echo "smoke: muerpd exited non-zero" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
}
daemon_pid=""

grep -q "final admission summary:" "$workdir/muerpd.log" || {
  echo "smoke: no final summary in daemon log" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
}
echo "smoke: clean shutdown, daemon log tail:"
tail -n 8 "$workdir/muerpd.log"
echo "smoke: OK"
