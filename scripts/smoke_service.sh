#!/usr/bin/env bash
# Smoke-test the serving layer end to end: build muerpd and qload, boot the
# daemon on a random port, replay a small workload against it, then SIGTERM
# the daemon and require a clean drain within 10 seconds.
#
# Environment knobs:
#   SESSIONS  number of replayed sessions   (default 50)
#   UNIT      real duration of one workload time unit (default 5ms)
#   GO        go binary                     (default go)
set -euo pipefail

GO=${GO:-go}
SESSIONS=${SESSIONS:-50}
UNIT=${UNIT:-5ms}

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -KILL "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke: building muerpd and qload"
"$GO" build -o "$workdir/muerpd" ./cmd/muerpd
"$GO" build -o "$workdir/qload" ./cmd/qload

echo "smoke: starting muerpd on a random port"
"$workdir/muerpd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
  -users 8 -switches 16 -ttl 2s >"$workdir/muerpd.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
  if [[ -s "$workdir/addr" ]]; then
    addr=$(cat "$workdir/addr")
    break
  fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: muerpd exited before binding" >&2
    cat "$workdir/muerpd.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "smoke: muerpd never wrote its address" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
fi
echo "smoke: daemon at $addr"

# The load driver itself gates on at least one accepted session.
"$workdir/qload" -addr "$addr" -sessions "$SESSIONS" -unit "$UNIT" -min-accepted 1

echo "smoke: sending SIGTERM"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    break
  fi
  sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke: muerpd still alive 10s after SIGTERM" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
fi
wait "$daemon_pid" || {
  echo "smoke: muerpd exited non-zero" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
}
daemon_pid=""

grep -q "final admission summary:" "$workdir/muerpd.log" || {
  echo "smoke: no final summary in daemon log" >&2
  cat "$workdir/muerpd.log" >&2
  exit 1
}
echo "smoke: clean shutdown, daemon log tail:"
tail -n 8 "$workdir/muerpd.log"
echo "smoke: OK"
